//! End-to-end daemon tests over a real loopback socket: cache
//! miss→hit, backpressure, deadlines, stats, graceful drain.

use sp_serve::{Json, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Start a server on an ephemeral port; returns its address and the
/// thread running the accept loop (joins once the server drains).
fn start(cfg: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&cfg).expect("bind loopback");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        assert!(line.ends_with('\n'), "unterminated reply {line:?}");
        Json::parse(line.trim()).expect("reply is JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }

    /// True when the server closed the connection (clean EOF).
    fn at_eof(&mut self) -> bool {
        let mut line = String::new();
        matches!(self.reader.read_line(&mut line), Ok(0))
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

fn cached(v: &Json) -> Option<bool> {
    v.get("cached").and_then(Json::as_bool)
}

fn result_text(v: &Json) -> String {
    v.get("result").expect("result field").encode()
}

#[test]
fn serves_caches_reports_and_drains() {
    let (addr, server) = start(ServerConfig {
        workers: 2,
        queue: 8,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);

    // Liveness, with the id echoed back.
    let pong = c.roundtrip("{\"id\":1,\"type\":\"ping\"}");
    assert!(ok(&pong), "{pong:?}");
    assert_eq!(pong.get("id").and_then(Json::as_u64), Some(1));

    // A sweep computes once, then repeats are served from cache with a
    // byte-identical result payload.
    let sweep = "{\"id\":2,\"type\":\"sweep\",\"bench\":\"em3d\",\"distances\":[2,4]}";
    let first = c.roundtrip(sweep);
    assert!(ok(&first), "{first:?}");
    assert_eq!(cached(&first), Some(false));
    let second = c.roundtrip(sweep);
    assert!(ok(&second), "{second:?}");
    assert_eq!(cached(&second), Some(true), "identical repeat must hit");
    assert_eq!(result_text(&first), result_text(&second));

    // A default-spelled variant of the same request also hits (keys are
    // built from resolved values, not raw text).
    let spelled = "{\"id\":3,\"type\":\"sweep\",\"bench\":\"em3d\",\"scale\":\"test\",\
                   \"rp\":0.5,\"distances\":[2,4],\"cache\":\"scaled\"}";
    let third = c.roundtrip(spelled);
    assert_eq!(cached(&third), Some(true), "{third:?}");

    // Malformed input gets a bad_request error, not a dropped connection.
    let bad = c.roundtrip("{\"type\":\"warp\"}");
    assert!(!ok(&bad));
    assert_eq!(bad.get("error").and_then(Json::as_str), Some("bad_request"));

    // Stats reflect everything above.
    let stats = c.roundtrip("{\"type\":\"stats\"}");
    assert!(ok(&stats), "{stats:?}");
    let r = stats.get("result").unwrap();
    let total = r
        .get("requests")
        .and_then(|q| q.get("total"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(total >= 6, "stats total {total}");
    let hits = r
        .get("cache")
        .and_then(|cch| cch.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(hits, 2, "two cache hits recorded");
    assert!(
        r.get("latency_us").and_then(Json::as_arr).is_some(),
        "latency histogram present"
    );

    // An eventful sweep keys separately from the plain one (miss, not
    // hit) and its points carry event summaries.
    let eventful = c.roundtrip(
        "{\"id\":4,\"type\":\"sweep\",\"bench\":\"em3d\",\"distances\":[2,4],\"events\":true}",
    );
    assert!(ok(&eventful), "{eventful:?}");
    assert_eq!(cached(&eventful), Some(false), "events=true is a new key");
    let points = eventful
        .get("result")
        .and_then(|r| r.get("points"))
        .and_then(Json::as_arr)
        .unwrap();
    assert!(
        points.iter().all(|p| p.get("events").is_some()),
        "{eventful:?}"
    );

    // The Prometheus exposition reflects the daemon and event counters.
    let prom = c.roundtrip("{\"type\":\"metrics\"}");
    assert!(ok(&prom), "{prom:?}");
    let r = prom.get("result").unwrap();
    assert_eq!(
        r.get("content_type").and_then(Json::as_str),
        Some("text/plain; version=0.0.4")
    );
    let body = r.get("body").and_then(Json::as_str).unwrap();
    assert!(body.contains("# TYPE sp_request_latency_us histogram"));
    assert!(
        body.contains("sp_request_latency_us_bucket{le=\"+Inf\"}"),
        "histogram buckets exposed"
    );
    assert!(body.contains("sp_cache_hits_total 2"), "got {body}");
    // The eventful sweep above fed the aggregate event totals: a
    // baseline plus two points.
    assert!(body.contains("sp_events_runs_total 3"), "got {body}");
    let issued_line = body
        .lines()
        .find(|l| l.starts_with("sp_events_prefetch_issued_total{class=\"helper\"}"))
        .expect("helper issued series");
    let issued: u64 = issued_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(issued > 0, "eventful runs issued helper prefetches");

    // Per-stage wall-time histograms, folded from the runtime spans.
    // cache_lookup spans flush with the handler's request span before
    // the reply is written, so the sweeps above are already folded.
    assert!(
        body.contains("# TYPE sp_stage_seconds histogram"),
        "got {body}"
    );
    let lookup_line = body
        .lines()
        .find(|l| l.starts_with("sp_stage_seconds_count{stage=\"cache_lookup\"}"))
        .expect("cache_lookup stage series");
    let lookups: u64 = lookup_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(lookups > 0, "cache lookups folded, got {body}");
    assert!(
        body.contains("sp_stage_seconds_bucket{stage=\"simulate\",le=\"+Inf\"}"),
        "simulate stage exposed, got {body}"
    );

    // Graceful drain: shutdown is acknowledged, the connection closes,
    // and the accept loop exits cleanly.
    let bye = c.roundtrip("{\"type\":\"shutdown\"}");
    assert!(ok(&bye), "{bye:?}");
    assert!(c.at_eof(), "server closes the connection after shutdown");
    server.join().unwrap().unwrap();
}

#[test]
fn sheds_load_with_busy_instead_of_stalling() {
    // One worker, one queue slot: a third in-flight request must be
    // rejected immediately, not stalled behind the others.
    let (addr, server) = start(ServerConfig {
        workers: 1,
        queue: 1,
        ..ServerConfig::default()
    });
    let mut c1 = Client::connect(addr);
    let mut c2 = Client::connect(addr);
    let mut c3 = Client::connect(addr);

    c1.send("{\"id\":1,\"type\":\"burn\",\"ms\":600}");
    // Let the worker dequeue c1's burn so the queue is empty again.
    std::thread::sleep(Duration::from_millis(200));
    c2.send("{\"id\":2,\"type\":\"burn\",\"ms\":100}"); // parks in the queue
    std::thread::sleep(Duration::from_millis(100));
    c3.send("{\"id\":3,\"type\":\"burn\",\"ms\":100}"); // queue full -> busy

    let rejected = c3.recv();
    assert!(!ok(&rejected), "{rejected:?}");
    assert_eq!(
        rejected.get("error").and_then(Json::as_str),
        Some("busy"),
        "{rejected:?}"
    );

    // The queued work still completes in order.
    let first = c1.recv();
    assert!(ok(&first), "{first:?}");
    let second = c2.recv();
    assert!(ok(&second), "{second:?}");

    // The shed request is visible in stats, and a retry now succeeds.
    let stats = c3.roundtrip("{\"type\":\"stats\"}");
    let busy = stats
        .get("result")
        .and_then(|r| r.get("requests"))
        .and_then(|q| q.get("busy"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(busy, 1, "{stats:?}");
    let retry = c3.roundtrip("{\"id\":4,\"type\":\"burn\",\"ms\":1}");
    assert!(ok(&retry), "{retry:?}");

    c1.roundtrip("{\"type\":\"shutdown\"}");
    server.join().unwrap().unwrap();
}

#[test]
fn deadline_overruns_get_a_timeout_reply() {
    let (addr, server) = start(ServerConfig {
        workers: 1,
        queue: 4,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);
    let reply = c.roundtrip("{\"id\":9,\"type\":\"burn\",\"ms\":400,\"timeout_ms\":20}");
    assert!(!ok(&reply), "{reply:?}");
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("timeout"));
    assert_eq!(reply.get("id").and_then(Json::as_u64), Some(9));

    // The connection survives a timeout; later requests still work.
    let pong = c.roundtrip("{\"type\":\"ping\"}");
    assert!(ok(&pong), "{pong:?}");

    c.roundtrip("{\"type\":\"shutdown\"}");
    server.join().unwrap().unwrap();
}

#[test]
fn timed_out_result_is_still_cached_for_the_retry() {
    let (addr, server) = start(ServerConfig {
        workers: 1,
        queue: 4,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);
    // Tight deadline on a real simulation: the reply times out, but the
    // worker finishes and fills the cache anyway.
    let q = "{\"type\":\"point\",\"bench\":\"em3d\",\"distance\":4,\"timeout_ms\":0}";
    let reply = c.roundtrip(q);
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("timeout"));

    // Wait for the worker to finish, then retry without a deadline.
    std::thread::sleep(Duration::from_millis(300));
    let retry = c.roundtrip("{\"type\":\"point\",\"bench\":\"em3d\",\"distance\":4}");
    assert!(ok(&retry), "{retry:?}");
    assert_eq!(cached(&retry), Some(true), "retry served from cache");

    c.roundtrip("{\"type\":\"shutdown\"}");
    server.join().unwrap().unwrap();
}
