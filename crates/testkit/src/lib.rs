//! # sp-testkit
//!
//! A tiny, std-only, fully deterministic property-testing harness. The
//! workspace builds offline with no external crates, so the randomized
//! tests that previously ran under `proptest` run under [`check`]
//! instead: a fixed number of cases, each driven by a [`SmallRng`]
//! seeded from the case index, so every run — local or CI — executes
//! the identical case list. A failing case reports its seed; replay it
//! with [`replay`] while debugging.
//!
//! No shrinking: cases are kept small by construction instead (the
//! generator helpers take explicit size ranges).

pub use sp_trace::SmallRng;

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The seed for case `i` of a [`check`] run. Mixing a large odd constant
/// keeps neighbouring cases' SplitMix64 streams unrelated.
pub fn case_seed(case: u64) -> u64 {
    0x5EED_CAFE_F00D_0001u64.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run `f` for `cases` deterministic random cases. Panics propagate,
/// prefixed (on stderr) with the failing case index and seed.
pub fn check<F>(cases: u64, f: F)
where
    F: Fn(&mut SmallRng),
{
    for case in 0..cases {
        let seed = case_seed(case);
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!("property failed on case {case}/{cases} (seed {seed:#x}); replay with sp_testkit::replay({seed:#x}, ...)");
            resume_unwind(panic);
        }
    }
}

/// Run `f` once with the given seed — for replaying a failure printed by
/// [`check`].
pub fn replay<F>(seed: u64, f: F)
where
    F: Fn(&mut SmallRng),
{
    let mut rng = SmallRng::seed_from_u64(seed);
    f(&mut rng);
}

/// A vector of `len` ∈ `len_range` elements drawn from `gen`.
pub fn gen_vec<T>(
    rng: &mut SmallRng,
    len_range: Range<usize>,
    mut gen: impl FnMut(&mut SmallRng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(len_range);
    (0..len).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn check_runs_the_requested_cases_deterministically() {
        let sum_a = AtomicU64::new(0);
        check(16, |rng| {
            sum_a.fetch_add(rng.next_u64() >> 32, Ordering::Relaxed);
        });
        let sum_b = AtomicU64::new(0);
        check(16, |rng| {
            sum_b.fetch_add(rng.next_u64() >> 32, Ordering::Relaxed);
        });
        assert_eq!(sum_a.load(Ordering::Relaxed), sum_b.load(Ordering::Relaxed));
        assert_ne!(sum_a.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn failures_propagate() {
        let r = catch_unwind(|| check(4, |_| panic!("boom")));
        assert!(r.is_err());
    }

    #[test]
    fn replay_reproduces_a_case() {
        let first = AtomicU64::new(0);
        check(1, |rng| first.store(rng.next_u64(), Ordering::Relaxed));
        let again = AtomicU64::new(0);
        replay(case_seed(0), |rng| {
            again.store(rng.next_u64(), Ordering::Relaxed)
        });
        assert_eq!(first.load(Ordering::Relaxed), again.load(Ordering::Relaxed));
    }

    #[test]
    fn gen_vec_respects_bounds() {
        check(32, |rng| {
            let v = gen_vec(rng, 2..7, |r| r.gen_range(0u64..10));
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        });
    }
}
