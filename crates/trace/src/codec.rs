//! Compact binary serialization of [`HotLoopTrace`]s — record once,
//! replay anywhere.
//!
//! Profile runs are expensive (the paper's methodology separates a
//! low-overhead profile run from the analysis); persisting the recorded
//! stream lets every analysis (`spt affinity --trace f.spt`, delinquent
//! ranking, reuse histograms) replay the same bytes.
//!
//! # Format (version 1)
//!
//! ```text
//! "SPTR" magic | u8 version
//! name: varint length + UTF-8 bytes
//! site_names: varint count, then (varint length + UTF-8)*
//! iterations: varint count, then per iteration:
//!   varint backbone_count | varint inner_count | varint compute_cycles
//!   per reference: u8 kind | varint site | zigzag-varint vaddr delta
//! ```
//!
//! Addresses are delta-encoded against the previous reference's address
//! (streams are local, so deltas are small); all integers are LEB128
//! varints. Typical workload traces encode at ~4–6 bytes per reference
//! versus 24 in memory.

use crate::record::{AccessKind, MemRef, SiteId};
use crate::stream::{HotLoopTrace, IterRecord};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"SPTR";
const VERSION: u8 = 1;

fn write_varint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
        v |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_string(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_string(r: &mut impl Read, max: u64) -> io::Result<String> {
    let len = read_varint(r)?;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "string too long",
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad UTF-8"))
}

fn kind_byte(k: AccessKind) -> u8 {
    match k {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
        AccessKind::Prefetch => 2,
    }
}

fn byte_kind(b: u8) -> io::Result<AccessKind> {
    Ok(match b {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        2 => AccessKind::Prefetch,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad access kind",
            ))
        }
    })
}

/// Serialize `trace` to `w`.
///
/// ```
/// use sp_trace::codec::{read_trace, write_trace};
/// use sp_trace::synth;
///
/// let t = synth::pointer_chase(32, 64, 7, 0);
/// let mut buf = Vec::new();
/// write_trace(&t, &mut buf).unwrap();
/// let back = read_trace(&mut buf.as_slice()).unwrap();
/// assert_eq!(back.iters, t.iters);
/// ```
pub fn write_trace(trace: &HotLoopTrace, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    write_string(w, &trace.name)?;
    write_varint(w, trace.site_names.len() as u64)?;
    for s in &trace.site_names {
        write_string(w, s)?;
    }
    write_varint(w, trace.iters.len() as u64)?;
    let mut prev_addr = 0i64;
    for it in &trace.iters {
        write_varint(w, it.backbone.len() as u64)?;
        write_varint(w, it.inner.len() as u64)?;
        write_varint(w, it.compute_cycles)?;
        for r in it.refs() {
            write_ref(w, r, &mut prev_addr)?;
        }
    }
    Ok(())
}

fn write_ref(w: &mut impl Write, r: &MemRef, prev: &mut i64) -> io::Result<()> {
    w.write_all(&[kind_byte(r.kind)])?;
    // ANON (u32::MAX) is by far the most common site in synthetic
    // streams; bias the encoding so it costs one byte instead of five.
    let site = if r.site == SiteId::ANON {
        0
    } else {
        r.site.0 as u64 + 1
    };
    write_varint(w, site)?;
    let delta = r.vaddr as i64 - *prev;
    write_varint(w, zigzag(delta))?;
    *prev = r.vaddr as i64;
    Ok(())
}

fn read_ref(r: &mut impl Read, prev: &mut i64) -> io::Result<MemRef> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    let kind = byte_kind(b[0])?;
    let site = match read_varint(r)? {
        0 => SiteId::ANON,
        n => SiteId((n - 1) as u32),
    };
    let delta = unzigzag(read_varint(r)?);
    let addr = prev.wrapping_add(delta);
    *prev = addr;
    Ok(MemRef {
        vaddr: addr as u64,
        site,
        kind,
    })
}

/// Deserialize a trace from `r`.
pub fn read_trace(r: &mut impl Read) -> io::Result<HotLoopTrace> {
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if &magic[..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an SPTR trace",
        ));
    }
    if magic[4] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {}", magic[4]),
        ));
    }
    let name = read_string(r, 1 << 16)?;
    let n_sites = read_varint(r)?;
    if n_sites > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "absurd site count",
        ));
    }
    let mut site_names = Vec::with_capacity(n_sites as usize);
    for _ in 0..n_sites {
        site_names.push(read_string(r, 1 << 16)?);
    }
    let n_iters = read_varint(r)?;
    let mut iters = Vec::new();
    let mut prev_addr = 0i64;
    for _ in 0..n_iters {
        let n_backbone = read_varint(r)? as usize;
        let n_inner = read_varint(r)? as usize;
        if n_backbone > 1 << 24 || n_inner > 1 << 24 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "absurd iteration size",
            ));
        }
        let compute_cycles = read_varint(r)?;
        let mut backbone = Vec::with_capacity(n_backbone);
        for _ in 0..n_backbone {
            backbone.push(read_ref(r, &mut prev_addr)?);
        }
        let mut inner = Vec::with_capacity(n_inner);
        for _ in 0..n_inner {
            inner.push(read_ref(r, &mut prev_addr)?);
        }
        iters.push(IterRecord {
            backbone,
            inner,
            compute_cycles,
        });
    }
    Ok(HotLoopTrace {
        name,
        site_names,
        iters,
    })
}

/// FNV-1a hasher exposed as an `io::Write` sink, so [`digest`] can hash
/// the canonical serialized form without materializing it.
struct FnvWriter(u64);

impl Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &b in buf {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Content digest of a trace: FNV-1a 64 over its canonical (version 1)
/// serialization. Two traces share a digest exactly when their encoded
/// bytes match, so the digest survives a [`save`]/[`load`] round trip
/// and is a stable identity key for compiled-trace and result caches.
pub fn digest(trace: &HotLoopTrace) -> u64 {
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    write_trace(trace, &mut w).expect("hashing cannot fail");
    w.0
}

/// Write `trace` to a file (buffered).
pub fn save(trace: &HotLoopTrace, path: &std::path::Path) -> io::Result<()> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    write_trace(trace, &mut w)?;
    w.flush()
}

/// Read a trace from a file (buffered).
pub fn load(path: &std::path::Path) -> io::Result<HotLoopTrace> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    read_trace(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn roundtrip(t: &HotLoopTrace) -> HotLoopTrace {
        let mut buf = Vec::new();
        write_trace(t, &mut buf).unwrap();
        read_trace(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = HotLoopTrace::new("empty");
        let back = roundtrip(&t);
        assert_eq!(back.name, "empty");
        assert!(back.iters.is_empty());
    }

    #[test]
    fn synthetic_traces_roundtrip_exactly() {
        for t in [
            synth::sequential(50, 3, 0x1000, 64, 7),
            synth::random(40, 4, 0, 1 << 30, 3, 2),
            synth::pointer_chase(64, 64, 9, 1),
        ] {
            let back = roundtrip(&t);
            assert_eq!(back.iters, t.iters);
            assert_eq!(back.name, t.name);
        }
    }

    #[test]
    fn site_names_and_kinds_survive() {
        let mut t = HotLoopTrace::new("named");
        t.site_names = vec!["a->b".into(), "c[i]".into()];
        t.iters.push(IterRecord {
            backbone: vec![MemRef::load(100, SiteId(0))],
            inner: vec![
                MemRef::store(200, SiteId(1)),
                MemRef::load(50, SiteId(0)).as_prefetch(),
            ],
            compute_cycles: 42,
        });
        let back = roundtrip(&t);
        assert_eq!(back.site_names, t.site_names);
        assert_eq!(back.iters, t.iters);
    }

    #[test]
    fn encoding_is_compact_for_local_streams() {
        let t = synth::sequential(1000, 8, 0, 64, 0);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let per_ref = buf.len() as f64 / t.total_refs() as f64;
        assert!(per_ref < 6.0, "expected < 6 bytes/ref, got {per_ref:.1}");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&mut &b"NOPE\x01"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let err = read_trace(&mut &b"SPTR\x63"[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let t = synth::sequential(10, 2, 0, 64, 0);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        for cut in [5, buf.len() / 2, buf.len() - 1] {
            assert!(read_trace(&mut &buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn file_save_load_roundtrip() {
        let dir = std::env::temp_dir().join("sp_trace_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.spt");
        let t = synth::random(30, 3, 0, 1 << 20, 11, 4);
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.iters, t.iters);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
