//! Precompiled traces: the cache-address projections of a
//! [`HotLoopTrace`], computed once per geometry instead of once per
//! replay.
//!
//! A distance sweep replays the identical trace once per grid point, and
//! every replay re-derives `block / set / tag` for every reference. A
//! [`CompiledTrace`] hoists that work out of the hot loop: one pass over
//! the trace precomputes the per-record projections for a fixed
//! [`TraceGeometry`] into flat struct-of-arrays storage, and the result
//! is shared (`Arc`) across all grid points, all passes, and repeated
//! service requests.
//!
//! The projections are only valid for the geometry they were compiled
//! for, so every consumer must call [`CompiledTrace::ensure_geometry`]
//! (or compare [`CompiledTrace::geometry`]) before replaying — a
//! mismatch is a typed [`GeometryMismatch`] error, never a silently
//! wrong simulation.

use crate::codec;
use crate::record::{AccessKind, MemRef, SiteId, VAddr};
use crate::stream::HotLoopTrace;
use std::fmt;
use std::ops::Range;

/// Address-mapping parameters of one cache level: line size and set
/// count, both powers of two. This is the projection-relevant subset of
/// a full cache geometry (capacity and associativity do not affect the
/// block/set/tag split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelGeometry {
    /// Line (block) size in bytes.
    pub line_size: u64,
    /// Number of sets.
    pub sets: u64,
}

impl LevelGeometry {
    /// Build and validate a level geometry.
    ///
    /// # Panics
    /// If either parameter is zero or not a power of two.
    pub fn new(line_size: u64, sets: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        LevelGeometry { line_size, sets }
    }

    /// Block-aligned address of `addr`.
    #[inline]
    pub fn block_of(self, addr: VAddr) -> VAddr {
        addr & !(self.line_size - 1)
    }

    /// Index of the set `addr` maps to.
    #[inline]
    pub fn set_of(self, addr: VAddr) -> u64 {
        (addr >> self.line_size.trailing_zeros()) & (self.sets - 1)
    }

    /// Tag of `addr` (the block address bits above the set index).
    #[inline]
    pub fn tag_of(self, addr: VAddr) -> u64 {
        addr >> (self.line_size.trailing_zeros() + self.sets.trailing_zeros())
    }
}

/// The two-level mapping a trace is compiled against (private L1 and
/// shared L2). Hashable, so it can key compiled-trace memo tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceGeometry {
    /// Per-core private L1 mapping.
    pub l1: LevelGeometry,
    /// Shared L2 mapping.
    pub l2: LevelGeometry,
}

/// A compiled trace was offered to a simulator with a different
/// geometry. Using the projections anyway would silently index the
/// wrong sets, so this is a hard, typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometryMismatch {
    /// Geometry the trace was compiled for.
    pub compiled_for: TraceGeometry,
    /// Geometry the consumer wanted to run against.
    pub requested: TraceGeometry,
}

impl fmt::Display for GeometryMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace compiled for {:?} cannot run against {:?}",
            self.compiled_for, self.requested
        )
    }
}

impl std::error::Error for GeometryMismatch {}

/// One reference with its precomputed cache projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledRef {
    /// Simulated virtual address (hardware prefetchers train on it).
    pub vaddr: VAddr,
    /// L2-block-aligned address (MSHR / pollution bookkeeping key).
    pub block: VAddr,
    /// L1 set index.
    pub l1_set: u32,
    /// L1 tag.
    pub l1_tag: u64,
    /// L2 set index.
    pub l2_set: u32,
    /// L2 tag.
    pub l2_tag: u64,
    /// Operation kind.
    pub kind: AccessKind,
    /// Static reference site.
    pub site: SiteId,
    /// Outer-loop iteration the reference was issued from.
    pub outer_iter: u32,
}

impl CompiledRef {
    /// The scalar reference this record was compiled from.
    pub fn mem_ref(&self) -> MemRef {
        MemRef {
            vaddr: self.vaddr,
            site: self.site,
            kind: self.kind,
        }
    }
}

/// A [`HotLoopTrace`] compiled for one [`TraceGeometry`]: flat
/// struct-of-arrays per-reference projections plus per-iteration
/// metadata (reference ranges, backbone split, compute cycles).
///
/// Build once with [`CompiledTrace::compile`], wrap in an `Arc`, and
/// replay from every grid point / pass / request.
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    geometry: TraceGeometry,
    digest: u64,
    name: String,
    // Per-reference SoA columns, indexed by flat reference position.
    vaddr: Vec<VAddr>,
    block: Vec<VAddr>,
    l1_set: Vec<u32>,
    l1_tag: Vec<u64>,
    l2_set: Vec<u32>,
    l2_tag: Vec<u64>,
    kind: Vec<AccessKind>,
    site: Vec<SiteId>,
    outer_iter: Vec<u32>,
    // Per-iteration metadata. `ref_start` has `outer_iters + 1` entries;
    // iteration `i`'s references are `ref_start[i]..ref_start[i+1]`, the
    // first `backbone_len[i]` of which are backbone references.
    ref_start: Vec<u32>,
    backbone_len: Vec<u32>,
    compute_cycles: Vec<u64>,
}

impl CompiledTrace {
    /// Compile `trace` for `geometry`. Deterministic: the same trace and
    /// geometry always produce identical arrays.
    pub fn compile(trace: &HotLoopTrace, geometry: TraceGeometry) -> Self {
        let n = trace.total_refs();
        let iters = trace.outer_iters();
        let mut c = CompiledTrace {
            geometry,
            digest: codec::digest(trace),
            name: trace.name.clone(),
            vaddr: Vec::with_capacity(n),
            block: Vec::with_capacity(n),
            l1_set: Vec::with_capacity(n),
            l1_tag: Vec::with_capacity(n),
            l2_set: Vec::with_capacity(n),
            l2_tag: Vec::with_capacity(n),
            kind: Vec::with_capacity(n),
            site: Vec::with_capacity(n),
            outer_iter: Vec::with_capacity(n),
            ref_start: Vec::with_capacity(iters + 1),
            backbone_len: Vec::with_capacity(iters),
            compute_cycles: Vec::with_capacity(iters),
        };
        c.ref_start.push(0);
        for (i, it) in trace.iters.iter().enumerate() {
            for r in it.refs() {
                c.vaddr.push(r.vaddr);
                c.block.push(geometry.l2.block_of(r.vaddr));
                c.l1_set.push(geometry.l1.set_of(r.vaddr) as u32);
                c.l1_tag.push(geometry.l1.tag_of(r.vaddr));
                c.l2_set.push(geometry.l2.set_of(r.vaddr) as u32);
                c.l2_tag.push(geometry.l2.tag_of(r.vaddr));
                c.kind.push(r.kind);
                c.site.push(r.site);
                c.outer_iter.push(i as u32);
            }
            c.ref_start.push(c.vaddr.len() as u32);
            c.backbone_len.push(it.backbone.len() as u32);
            c.compute_cycles.push(it.compute_cycles);
        }
        c
    }

    /// The geometry this trace was compiled for.
    pub fn geometry(&self) -> TraceGeometry {
        self.geometry
    }

    /// Content digest of the source trace ([`codec::digest`]).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Name of the source trace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of outer-loop iterations.
    pub fn outer_iters(&self) -> usize {
        self.backbone_len.len()
    }

    /// Total number of references.
    pub fn total_refs(&self) -> usize {
        self.vaddr.len()
    }

    /// Guard against replaying with the wrong projections: `Ok` only if
    /// `requested` matches the compiled geometry.
    pub fn ensure_geometry(&self, requested: TraceGeometry) -> Result<(), GeometryMismatch> {
        if self.geometry == requested {
            Ok(())
        } else {
            Err(GeometryMismatch {
                compiled_for: self.geometry,
                requested,
            })
        }
    }

    /// Flat index range of iteration `it`'s references (backbone first,
    /// program order — same order as [`crate::IterRecord::refs`]).
    #[inline]
    pub fn iter_refs(&self, it: usize) -> Range<usize> {
        self.ref_start[it] as usize..self.ref_start[it + 1] as usize
    }

    /// How many of iteration `it`'s references are backbone references.
    #[inline]
    pub fn backbone_len(&self, it: usize) -> usize {
        self.backbone_len[it] as usize
    }

    /// Flat index range of iteration `it`'s backbone references.
    #[inline]
    pub fn iter_backbone(&self, it: usize) -> Range<usize> {
        let start = self.ref_start[it] as usize;
        start..start + self.backbone_len[it] as usize
    }

    /// Flat index range of iteration `it`'s inner references.
    #[inline]
    pub fn iter_inner(&self, it: usize) -> Range<usize> {
        let start = self.ref_start[it] as usize + self.backbone_len[it] as usize;
        start..self.ref_start[it + 1] as usize
    }

    /// Compute cycles attributed to iteration `it`.
    #[inline]
    pub fn compute_cycles(&self, it: usize) -> u64 {
        self.compute_cycles[it]
    }

    /// The reference at flat index `i`, reassembled from the columns.
    #[inline]
    pub fn get(&self, i: usize) -> CompiledRef {
        CompiledRef {
            vaddr: self.vaddr[i],
            block: self.block[i],
            l1_set: self.l1_set[i],
            l1_tag: self.l1_tag[i],
            l2_set: self.l2_set[i],
            l2_tag: self.l2_tag[i],
            kind: self.kind[i],
            site: self.site[i],
            outer_iter: self.outer_iter[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::IterRecord;
    use crate::synth;

    fn geo() -> TraceGeometry {
        TraceGeometry {
            l1: LevelGeometry::new(64, 64),
            l2: LevelGeometry::new(64, 4096),
        }
    }

    #[test]
    fn level_geometry_matches_division_mapping() {
        let g = LevelGeometry::new(64, 64);
        for addr in [0u64, 63, 64, 4096, 0xdead_beef, u64::MAX - 63] {
            assert_eq!(g.block_of(addr), addr & !63);
            assert_eq!(g.set_of(addr), (addr / 64) % 64);
            assert_eq!(g.tag_of(addr), addr / 64 / 64);
        }
    }

    #[test]
    fn compiled_projections_match_scalar_walk() {
        let t = synth::pointer_chase(40, 64, 7, 3);
        let g = geo();
        let c = CompiledTrace::compile(&t, g);
        assert_eq!(c.outer_iters(), t.outer_iters());
        assert_eq!(c.total_refs(), t.total_refs());
        let mut i = 0usize;
        for (iter, r) in t.tagged_refs() {
            let cr = c.get(i);
            assert_eq!(cr.mem_ref(), *r);
            assert_eq!(cr.outer_iter, iter);
            assert_eq!(cr.block, g.l2.block_of(r.vaddr));
            assert_eq!(cr.l1_set as u64, g.l1.set_of(r.vaddr));
            assert_eq!(cr.l1_tag, g.l1.tag_of(r.vaddr));
            assert_eq!(cr.l2_set as u64, g.l2.set_of(r.vaddr));
            assert_eq!(cr.l2_tag, g.l2.tag_of(r.vaddr));
            i += 1;
        }
        assert_eq!(i, c.total_refs());
    }

    #[test]
    fn iteration_ranges_split_backbone_and_inner() {
        let mut t = HotLoopTrace::new("split");
        t.iters.push(IterRecord {
            backbone: vec![MemRef::anon(0), MemRef::anon(64)],
            inner: vec![MemRef::anon(128)],
            compute_cycles: 5,
        });
        t.iters.push(IterRecord {
            backbone: vec![MemRef::anon(256)],
            inner: vec![],
            compute_cycles: 9,
        });
        let c = CompiledTrace::compile(&t, geo());
        assert_eq!(c.iter_refs(0), 0..3);
        assert_eq!(c.iter_backbone(0), 0..2);
        assert_eq!(c.iter_inner(0), 2..3);
        assert_eq!(c.iter_refs(1), 3..4);
        assert_eq!(c.iter_inner(1), 4..4);
        assert_eq!(c.compute_cycles(0), 5);
        assert_eq!(c.compute_cycles(1), 9);
    }

    #[test]
    fn compilation_is_deterministic() {
        let t = synth::random(30, 5, 0, 1 << 24, 11, 2);
        let a = CompiledTrace::compile(&t, geo());
        let b = CompiledTrace::compile(&t, geo());
        assert_eq!(a.digest(), b.digest());
        for i in 0..a.total_refs() {
            assert_eq!(a.get(i), b.get(i));
        }
    }

    #[test]
    fn digest_survives_codec_roundtrip() {
        let t = synth::sequential(64, 4, 0x8000, 64, 3);
        let mut buf = Vec::new();
        codec::write_trace(&t, &mut buf).unwrap();
        let back = codec::read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(codec::digest(&t), codec::digest(&back));
        assert_eq!(
            CompiledTrace::compile(&t, geo()).digest(),
            CompiledTrace::compile(&back, geo()).digest()
        );
        // Distinct traces get distinct digests.
        let other = synth::sequential(64, 4, 0x8040, 64, 3);
        assert_ne!(codec::digest(&t), codec::digest(&other));
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let t = synth::pointer_chase(8, 64, 5, 0);
        let c = CompiledTrace::compile(&t, geo());
        assert_eq!(c.ensure_geometry(geo()), Ok(()));
        let other = TraceGeometry {
            l1: LevelGeometry::new(64, 64),
            l2: LevelGeometry::new(64, 2048),
        };
        let err = c.ensure_geometry(other).unwrap_err();
        assert_eq!(err.compiled_for, geo());
        assert_eq!(err.requested, other);
        let msg = err.to_string();
        assert!(msg.contains("compiled for"), "{msg}");
    }

    #[test]
    fn empty_trace_compiles() {
        let c = CompiledTrace::compile(&HotLoopTrace::new("empty"), geo());
        assert_eq!(c.outer_iters(), 0);
        assert_eq!(c.total_refs(), 0);
        assert_eq!(c.name(), "empty");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = LevelGeometry::new(64, 3);
    }
}
