//! # sp-trace
//!
//! Memory-reference stream representation shared by every crate in the
//! workspace.
//!
//! The paper profiles the *data access stream* of a hot loop: a sequence of
//! memory references, each tagged with the **outer-loop iteration** it was
//! issued from. Everything downstream — the Set Affinity analysis
//! (paper §III.B, Fig. 3), the Skip-Prefetching helper-thread construction
//! (paper §II.A, Fig. 1), and the CMP co-simulation — consumes this
//! representation.
//!
//! The central type is [`HotLoopTrace`]: one [`IterRecord`] per outer-loop
//! iteration, with the references split into the **backbone** (the pointer
//! chase that advances the outer loop — the helper thread must execute
//! these even in skipped iterations) and the **inner** references (the
//! delinquent loads of the inner loop — the helper thread prefetches these
//! only in its `A_PRE` pre-executed iterations).
//!
//! [`synth`] provides deterministic synthetic streams used by unit tests,
//! property tests, and the ablation benches; [`codec`] persists recorded
//! traces in a compact delta-encoded binary format for record/replay.

pub mod codec;
pub mod compiled;
pub mod record;
pub mod rng;
pub mod stream;
pub mod synth;

pub use codec::{digest as trace_digest, load as load_trace, save as save_trace};
pub use compiled::{CompiledRef, CompiledTrace, GeometryMismatch, LevelGeometry, TraceGeometry};
pub use record::{AccessKind, MemRef, SiteId, VAddr};
pub use rng::SmallRng;
pub use stream::{HotLoopTrace, IterRecord, TraceStats};
