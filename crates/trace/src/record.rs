//! Single memory-reference records.

/// A simulated virtual address, in bytes.
///
/// Workloads allocate their data structures from `sp-workloads`' arena,
/// which hands out stable addresses in a flat 64-bit space; the cache
/// simulator only ever looks at block/set/tag projections of this value.
pub type VAddr = u64;

/// Identifies a static reference site (a load/store instruction in the hot
/// loop, e.g. `other_node->from_length` in the paper's Fig. 1(a)).
///
/// Sites are small dense integers; [`HotLoopTrace`](crate::HotLoopTrace)
/// carries a parallel `site_names` table for reporting. Delinquent-load
/// ranking in `sp-profiler` is keyed by `SiteId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Site used when the origin of a reference is irrelevant (synthetic
    /// streams, tests).
    pub const ANON: SiteId = SiteId(u32::MAX);
}

/// What kind of memory operation a reference is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A demand store. Stores allocate in cache like loads (write-allocate)
    /// but are never issued by the helper thread.
    Store,
    /// A software prefetch (issued by the helper thread). Fills the shared
    /// cache but does not stall the issuing core on a miss.
    Prefetch,
}

impl AccessKind {
    /// `true` for operations that the paper's helper thread replicates
    /// (it executes "only the load's computation", paper §II.A).
    pub fn helper_visible(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

/// One memory reference of the hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Simulated virtual address of the first byte touched.
    pub vaddr: VAddr,
    /// Static reference site this access came from.
    pub site: SiteId,
    /// Operation kind.
    pub kind: AccessKind,
}

impl MemRef {
    /// A demand load at `vaddr` from `site`.
    pub fn load(vaddr: VAddr, site: SiteId) -> Self {
        MemRef {
            vaddr,
            site,
            kind: AccessKind::Load,
        }
    }

    /// A demand store at `vaddr` from `site`.
    pub fn store(vaddr: VAddr, site: SiteId) -> Self {
        MemRef {
            vaddr,
            site,
            kind: AccessKind::Store,
        }
    }

    /// An anonymous load, for tests and synthetic streams.
    pub fn anon(vaddr: VAddr) -> Self {
        MemRef::load(vaddr, SiteId::ANON)
    }

    /// The same reference reissued as a software prefetch (what the helper
    /// thread does with a delinquent load).
    pub fn as_prefetch(self) -> Self {
        MemRef {
            kind: AccessKind::Prefetch,
            ..self
        }
    }

    /// Block-aligned address for a cache with `line_size` bytes per line.
    /// `line_size` must be a power of two.
    pub fn block(self, line_size: u64) -> VAddr {
        debug_assert!(line_size.is_power_of_two());
        self.vaddr & !(line_size - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_alignment_masks_low_bits() {
        let r = MemRef::anon(0x1234_5678);
        assert_eq!(r.block(64), 0x1234_5640);
        assert_eq!(r.block(1), 0x1234_5678);
        assert_eq!(r.block(4096), 0x1234_5000);
    }

    #[test]
    fn block_of_aligned_address_is_identity() {
        let r = MemRef::anon(0x40);
        assert_eq!(r.block(64), 0x40);
    }

    #[test]
    fn prefetch_conversion_keeps_address_and_site() {
        let r = MemRef::load(0xdead_beef, SiteId(7));
        let p = r.as_prefetch();
        assert_eq!(p.vaddr, r.vaddr);
        assert_eq!(p.site, r.site);
        assert_eq!(p.kind, AccessKind::Prefetch);
    }

    #[test]
    fn helper_visibility() {
        assert!(AccessKind::Load.helper_visible());
        assert!(!AccessKind::Store.helper_visible());
        assert!(!AccessKind::Prefetch.helper_visible());
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(MemRef::load(1, SiteId(0)).kind, AccessKind::Load);
        assert_eq!(MemRef::store(1, SiteId(0)).kind, AccessKind::Store);
        assert_eq!(MemRef::anon(1).site, SiteId::ANON);
    }
}
