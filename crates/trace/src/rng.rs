//! Deterministic, dependency-free pseudo-random numbers.
//!
//! Every stochastic element of the workspace — synthetic traces, workload
//! graph wiring, arena fragmentation gaps, randomized tests — draws from
//! [`SmallRng`], a xoshiro256** generator seeded through SplitMix64. The
//! workspace builds offline with no external crates, so this module is the
//! single source of randomness; it is seedable, portable (pure `u64`
//! arithmetic, identical on every platform), and fast.
//!
//! The bounded-sampling path uses rejection from the top bits, so
//! `gen_range` is unbiased for any span.

use std::ops::{Range, RangeInclusive};

/// xoshiro256** — a small, fast, high-quality PRNG (Blackman & Vigna).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seed deterministically from a single `u64` (SplitMix64 expansion,
    /// the standard way to fill xoshiro state from a small seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// An unbiased draw from `[0, bound)` (rejection from the top bits).
    #[inline]
    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject values in the final partial copy of [0, bound) so every
        // residue is equally likely.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform draw from a half-open or inclusive integer range, like
    /// `rand::Rng::gen_range`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

/// Integer ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled integer type.
    type Output;
    /// Draw one uniform value.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + rng.bounded(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u64, u32, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_locks_the_algorithm() {
        // Golden values pin the exact xoshiro256**+SplitMix64 stream: a
        // change to either algorithm breaks every recorded fixture.
        let mut r = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let x = r.gen_range(0u32..3);
            assert!(x < 3);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 residues must appear");
    }

    #[test]
    fn f64_and_bool_behave() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!((0..100).map(|_| r.gen_bool(0.0)).all(|b| !b));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements virtually never shuffle to id");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = SmallRng::seed_from_u64(1);
        let _ = r.gen_range(5u64..5);
    }
}
