//! Hot-loop traces: per-outer-iteration reference streams.

use crate::record::{AccessKind, MemRef, VAddr};
use std::collections::HashSet;

/// The references and computation attributed to **one outer-loop
/// iteration** of a hot loop.
///
/// The split between `backbone` and `inner` mirrors the structure the
/// SP transformation needs (paper Fig. 1): in a *skipped* iteration the
/// helper thread still executes the backbone (it must chase
/// `curr_node->next` to advance), but omits the inner loop; in a
/// *pre-executed* iteration it executes both.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterRecord {
    /// References required to advance the outer loop (the LDS pointer
    /// chase through the node list).
    pub backbone: Vec<MemRef>,
    /// Inner-loop references — the delinquent loads the helper prefetches.
    pub inner: Vec<MemRef>,
    /// Pure computation cycles attributed to this iteration (arithmetic
    /// between accesses). Together with the access latencies this defines
    /// the loop's CALR (computation/access-latency ratio).
    pub compute_cycles: u64,
}

impl IterRecord {
    /// Number of references in this iteration.
    pub fn len(&self) -> usize {
        self.backbone.len() + self.inner.len()
    }

    /// `true` if the iteration issues no references at all.
    pub fn is_empty(&self) -> bool {
        self.backbone.is_empty() && self.inner.is_empty()
    }

    /// All references of the iteration, backbone first (program order).
    pub fn refs(&self) -> impl Iterator<Item = &MemRef> {
        self.backbone.iter().chain(self.inner.iter())
    }
}

/// A profiled hot loop: one [`IterRecord`] per outer-loop iteration.
#[derive(Debug, Clone, Default)]
pub struct HotLoopTrace {
    /// Human-readable name of the hot function (e.g. `"em3d::compute_nodes"`).
    pub name: String,
    /// Names of the static reference sites, indexed by
    /// [`SiteId`](crate::SiteId) value.
    pub site_names: Vec<String>,
    /// The iterations of the outer hot loop, in program order.
    pub iters: Vec<IterRecord>,
}

impl HotLoopTrace {
    /// An empty trace with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        HotLoopTrace {
            name: name.into(),
            site_names: Vec::new(),
            iters: Vec::new(),
        }
    }

    /// Number of outer-loop iterations.
    pub fn outer_iters(&self) -> usize {
        self.iters.len()
    }

    /// Total number of references across all iterations.
    pub fn total_refs(&self) -> usize {
        self.iters.iter().map(IterRecord::len).sum()
    }

    /// Iterate over `(outer_iteration, reference)` pairs in program order.
    ///
    /// This is the flat stream the Set Affinity analysis (paper Fig. 3)
    /// walks: each reference carries the iteration count of the outer hot
    /// loop at which it was issued.
    pub fn tagged_refs(&self) -> impl Iterator<Item = (u32, &MemRef)> {
        self.iters
            .iter()
            .enumerate()
            .flat_map(|(i, it)| it.refs().map(move |r| (i as u32, r)))
    }

    /// Summary statistics over the trace for a given cache line size.
    pub fn stats(&self, line_size: u64) -> TraceStats {
        let mut blocks: HashSet<VAddr> = HashSet::new();
        let mut loads = 0usize;
        let mut stores = 0usize;
        let mut backbone_refs = 0usize;
        let mut inner_refs = 0usize;
        let mut compute_cycles = 0u64;
        for it in &self.iters {
            backbone_refs += it.backbone.len();
            inner_refs += it.inner.len();
            compute_cycles += it.compute_cycles;
            for r in it.refs() {
                blocks.insert(r.block(line_size));
                match r.kind {
                    AccessKind::Load | AccessKind::Prefetch => loads += 1,
                    AccessKind::Store => stores += 1,
                }
            }
        }
        TraceStats {
            outer_iters: self.iters.len(),
            total_refs: backbone_refs + inner_refs,
            backbone_refs,
            inner_refs,
            loads,
            stores,
            unique_blocks: blocks.len(),
            footprint_bytes: blocks.len() as u64 * line_size,
            compute_cycles,
        }
    }

    /// Truncate the trace to the first `n` outer iterations (used by the
    /// burst sampler and by tests). No-op if the trace is shorter.
    pub fn truncated(&self, n: usize) -> HotLoopTrace {
        HotLoopTrace {
            name: self.name.clone(),
            site_names: self.site_names.clone(),
            iters: self.iters.iter().take(n).cloned().collect(),
        }
    }
}

/// Aggregate statistics of a [`HotLoopTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of outer-loop iterations.
    pub outer_iters: usize,
    /// Total references.
    pub total_refs: usize,
    /// References in outer-loop backbones.
    pub backbone_refs: usize,
    /// References in inner loops (delinquent-load candidates).
    pub inner_refs: usize,
    /// Load (and prefetch) references.
    pub loads: usize,
    /// Store references.
    pub stores: usize,
    /// Distinct cache blocks touched.
    pub unique_blocks: usize,
    /// `unique_blocks * line_size`.
    pub footprint_bytes: u64,
    /// Total pure-computation cycles in the trace.
    pub compute_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SiteId;

    fn trace_2x2() -> HotLoopTrace {
        let mut t = HotLoopTrace::new("t");
        t.iters.push(IterRecord {
            backbone: vec![MemRef::load(0, SiteId(0))],
            inner: vec![MemRef::load(64, SiteId(1)), MemRef::store(128, SiteId(2))],
            compute_cycles: 10,
        });
        t.iters.push(IterRecord {
            backbone: vec![MemRef::load(256, SiteId(0))],
            inner: vec![MemRef::load(64, SiteId(1))],
            compute_cycles: 5,
        });
        t
    }

    #[test]
    fn tagged_refs_preserve_program_order_and_iteration_tags() {
        let t = trace_2x2();
        let tags: Vec<(u32, VAddr)> = t.tagged_refs().map(|(i, r)| (i, r.vaddr)).collect();
        assert_eq!(tags, vec![(0, 0), (0, 64), (0, 128), (1, 256), (1, 64)]);
    }

    #[test]
    fn stats_count_unique_blocks_not_refs() {
        let t = trace_2x2();
        let s = t.stats(64);
        assert_eq!(s.outer_iters, 2);
        assert_eq!(s.total_refs, 5);
        assert_eq!(s.backbone_refs, 2);
        assert_eq!(s.inner_refs, 3);
        assert_eq!(s.loads, 4);
        assert_eq!(s.stores, 1);
        // blocks: 0, 64, 128, 256 -> 4 (the second access to 64 dedups)
        assert_eq!(s.unique_blocks, 4);
        assert_eq!(s.footprint_bytes, 256);
        assert_eq!(s.compute_cycles, 15);
    }

    #[test]
    fn stats_respect_line_size() {
        let t = trace_2x2();
        // With 512-byte lines everything collapses into one block.
        assert_eq!(t.stats(512).unique_blocks, 1);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let t = trace_2x2();
        let t1 = t.truncated(1);
        assert_eq!(t1.outer_iters(), 1);
        assert_eq!(t1.total_refs(), 3);
        // Longer than the trace: no-op.
        assert_eq!(t.truncated(10).outer_iters(), 2);
    }

    #[test]
    fn iter_record_len_and_empty() {
        let it = IterRecord::default();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
        let t = trace_2x2();
        assert_eq!(t.iters[0].len(), 3);
        assert!(!t.iters[0].is_empty());
    }
}
