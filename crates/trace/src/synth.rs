//! Deterministic synthetic reference streams.
//!
//! These generators exist so that the cache simulator, the Set Affinity
//! analysis, and the SP transformation can be tested against streams whose
//! properties are known *by construction* — e.g. a [`set_hammer`] stream
//! has an exactly computable Set Affinity.

use crate::record::{MemRef, SiteId};
use crate::rng::SmallRng;
use crate::stream::{HotLoopTrace, IterRecord};

/// A block-sequential scan: iteration `i` touches `refs_per_iter`
/// consecutive blocks starting at `base + i * refs_per_iter * stride`.
///
/// With `stride == line_size` this is the classic streaming pattern that
/// hardware streamers catch.
pub fn sequential(
    outer_iters: usize,
    refs_per_iter: usize,
    base: u64,
    stride: u64,
    compute_cycles: u64,
) -> HotLoopTrace {
    let mut t = HotLoopTrace::new("synth::sequential");
    for i in 0..outer_iters {
        let start = base + (i * refs_per_iter) as u64 * stride;
        let inner = (0..refs_per_iter)
            .map(|j| MemRef::anon(start + j as u64 * stride))
            .collect();
        t.iters.push(IterRecord {
            backbone: Vec::new(),
            inner,
            compute_cycles,
        });
    }
    t
}

/// A constant-stride stream with one reference per outer iteration —
/// the pattern an IP-indexed DPL (stride) prefetcher locks onto.
pub fn strided(outer_iters: usize, base: u64, stride: i64, compute_cycles: u64) -> HotLoopTrace {
    let mut t = HotLoopTrace::new("synth::strided");
    for i in 0..outer_iters {
        let addr = (base as i64 + i as i64 * stride) as u64;
        t.iters.push(IterRecord {
            backbone: Vec::new(),
            inner: vec![MemRef::load(addr, SiteId(0))],
            compute_cycles,
        });
    }
    t
}

/// Uniform-random references over `[base, base + span)`, `refs_per_iter`
/// per outer iteration. Deterministic for a given `seed`.
pub fn random(
    outer_iters: usize,
    refs_per_iter: usize,
    base: u64,
    span: u64,
    seed: u64,
    compute_cycles: u64,
) -> HotLoopTrace {
    assert!(span > 0, "address span must be non-empty");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = HotLoopTrace::new("synth::random");
    for _ in 0..outer_iters {
        let inner = (0..refs_per_iter)
            .map(|_| MemRef::anon(base + rng.gen_range(0..span)))
            .collect();
        t.iters.push(IterRecord {
            backbone: Vec::new(),
            inner,
            compute_cycles,
        });
    }
    t
}

/// A pointer-chase through `nodes` nodes of `node_size` bytes laid out in
/// a (seeded) shuffled order: iteration `i` loads the header of node
/// `perm[i]` as its backbone, modelling `curr = curr->next` over a
/// fragmented heap.
pub fn pointer_chase(nodes: usize, node_size: u64, seed: u64, compute_cycles: u64) -> HotLoopTrace {
    let mut perm: Vec<u64> = (0..nodes as u64).collect();
    // Fisher–Yates with a seeded RNG.
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut t = HotLoopTrace::new("synth::pointer_chase");
    for &p in &perm {
        t.iters.push(IterRecord {
            backbone: vec![MemRef::load(p * node_size, SiteId(0))],
            inner: Vec::new(),
            compute_cycles,
        });
    }
    t
}

/// A stream that hammers a single cache set: every reference maps to set
/// `set_index` of a cache with `num_sets` sets and `line_size`-byte lines,
/// and every reference is a *distinct* block.
///
/// With `blocks_per_iter` new blocks per outer iteration and an
/// associativity of `ways`, the Set Affinity of the hammered set is
/// exactly `ceil((ways + 1) / blocks_per_iter) - 1` iterations completed
/// before the `(ways+1)`-th distinct block lands — i.e. the analysis must
/// report the iteration index at which the set first overflows. Tests in
/// `sp-core::affinity` rely on this closed form.
pub fn set_hammer(
    outer_iters: usize,
    blocks_per_iter: usize,
    set_index: u64,
    num_sets: u64,
    line_size: u64,
) -> HotLoopTrace {
    assert!(num_sets.is_power_of_two() && line_size.is_power_of_two());
    assert!(set_index < num_sets);
    let set_stride = num_sets * line_size; // consecutive blocks in one set
    let mut t = HotLoopTrace::new("synth::set_hammer");
    let mut block = 0u64;
    for _ in 0..outer_iters {
        let mut inner = Vec::with_capacity(blocks_per_iter);
        for _ in 0..blocks_per_iter {
            inner.push(MemRef::anon(set_index * line_size + block * set_stride));
            block += 1;
        }
        t.iters.push(IterRecord {
            backbone: Vec::new(),
            inner,
            compute_cycles: 0,
        });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_addresses_are_consecutive() {
        let t = sequential(3, 2, 0, 64, 7);
        let addrs: Vec<u64> = t.tagged_refs().map(|(_, r)| r.vaddr).collect();
        assert_eq!(addrs, vec![0, 64, 128, 192, 256, 320]);
        assert!(t.iters.iter().all(|it| it.compute_cycles == 7));
    }

    #[test]
    fn strided_supports_negative_stride() {
        let t = strided(3, 1000, -64, 0);
        let addrs: Vec<u64> = t.tagged_refs().map(|(_, r)| r.vaddr).collect();
        assert_eq!(addrs, vec![1000, 936, 872]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = random(10, 4, 0, 1 << 20, 42, 0);
        let b = random(10, 4, 0, 1 << 20, 42, 0);
        let c = random(10, 4, 0, 1 << 20, 43, 0);
        let va: Vec<u64> = a.tagged_refs().map(|(_, r)| r.vaddr).collect();
        let vb: Vec<u64> = b.tagged_refs().map(|(_, r)| r.vaddr).collect();
        let vc: Vec<u64> = c.tagged_refs().map(|(_, r)| r.vaddr).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn random_addresses_stay_in_span() {
        let t = random(50, 3, 4096, 8192, 1, 0);
        assert!(t
            .tagged_refs()
            .all(|(_, r)| (4096..4096 + 8192).contains(&r.vaddr)));
    }

    #[test]
    fn pointer_chase_visits_every_node_once() {
        let t = pointer_chase(100, 64, 9, 0);
        let mut addrs: Vec<u64> = t.tagged_refs().map(|(_, r)| r.vaddr).collect();
        addrs.sort_unstable();
        let expect: Vec<u64> = (0..100u64).map(|i| i * 64).collect();
        assert_eq!(addrs, expect);
        // Backbone refs, not inner: the chase advances the outer loop.
        assert!(t
            .iters
            .iter()
            .all(|it| it.backbone.len() == 1 && it.inner.is_empty()));
    }

    #[test]
    fn set_hammer_blocks_all_map_to_the_target_set_and_are_distinct() {
        let (num_sets, line) = (64u64, 64u64);
        let t = set_hammer(10, 3, 5, num_sets, line);
        let mut blocks = std::collections::HashSet::new();
        for (_, r) in t.tagged_refs() {
            let block = r.block(line);
            assert_eq!((block / line) % num_sets, 5, "block must map to set 5");
            assert!(blocks.insert(block), "blocks must be distinct");
        }
        assert_eq!(blocks.len(), 30);
    }

    #[test]
    #[should_panic(expected = "span must be non-empty")]
    fn random_rejects_empty_span() {
        let _ = random(1, 1, 0, 0, 0, 0);
    }
}
