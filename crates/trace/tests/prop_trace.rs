//! Property tests: trace statistics and synthetic-stream guarantees.
//!
//! Deterministic randomized cases via `sp_testkit::check` (std-only; see
//! that crate for the replay workflow).

use sp_testkit::{check, gen_vec, SmallRng};
use sp_trace::{synth, HotLoopTrace, IterRecord, MemRef};
use std::collections::HashSet;

fn arb_trace(rng: &mut SmallRng) -> HotLoopTrace {
    let mut t = HotLoopTrace::new("arb");
    let iters = rng.gen_range(0usize..50);
    for _ in 0..iters {
        let backbone = gen_vec(rng, 0..4, |r| MemRef::anon(r.gen_range(0u64..(1 << 20))));
        let inner = gen_vec(rng, 0..8, |r| MemRef::anon(r.gen_range(0u64..(1 << 20))));
        t.iters.push(IterRecord {
            backbone,
            inner,
            compute_cycles: rng.gen_range(0u64..100),
        });
    }
    t
}

/// Stats are internally consistent for arbitrary traces.
#[test]
fn stats_consistency() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let line = 1u64 << rng.gen_range(5u32..9);
        let s = t.stats(line);
        assert_eq!(s.total_refs, t.total_refs());
        assert_eq!(s.backbone_refs + s.inner_refs, s.total_refs);
        assert_eq!(s.loads + s.stores, s.total_refs);
        assert!(s.unique_blocks <= s.total_refs);
        assert_eq!(s.footprint_bytes, s.unique_blocks as u64 * line);
        assert_eq!(s.outer_iters, t.outer_iters());
    });
}

/// Coarser lines never increase the distinct-block count.
#[test]
fn coarser_lines_merge_blocks() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let fine = t.stats(64).unique_blocks;
        let coarse = t.stats(256).unique_blocks;
        assert!(coarse <= fine);
    });
}

/// `tagged_refs` yields exactly the trace's references in iteration
/// order with non-decreasing tags.
#[test]
fn tagged_refs_in_order() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let mut count = 0usize;
        let mut last_tag = 0u32;
        for (tag, _) in t.tagged_refs() {
            assert!(tag >= last_tag);
            assert!((tag as usize) < t.outer_iters());
            last_tag = tag;
            count += 1;
        }
        assert_eq!(count, t.total_refs());
    });
}

/// Truncation takes an exact prefix.
#[test]
fn truncation_is_prefix() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let n = rng.gen_range(0usize..60);
        let p = t.truncated(n);
        assert_eq!(p.outer_iters(), n.min(t.outer_iters()));
        for (a, b) in p.iters.iter().zip(&t.iters) {
            assert_eq!(a, b);
        }
    });
}

/// `set_hammer` delivers exactly `iters * blocks_per_iter` distinct
/// blocks, all mapped to the requested set.
#[test]
fn set_hammer_guarantees() {
    check(64, |rng| {
        let iters = rng.gen_range(1usize..40);
        let bpi = rng.gen_range(1usize..6);
        let sets = 1u64 << rng.gen_range(3u32..9);
        let set = (1u64 << rng.gen_range(0u32..8)).min(sets - 1);
        let t = synth::set_hammer(iters, bpi, set, sets, 64);
        let mut blocks = HashSet::new();
        for (_, r) in t.tagged_refs() {
            assert_eq!((r.block(64) / 64) % sets, set);
            assert!(blocks.insert(r.block(64)));
        }
        assert_eq!(blocks.len(), iters * bpi);
    });
}

/// `pointer_chase` visits each node exactly once, whatever the seed.
#[test]
fn pointer_chase_is_a_permutation() {
    check(64, |rng| {
        let n = rng.gen_range(1usize..200);
        let seed = rng.gen_range(0u64..1000);
        let t = synth::pointer_chase(n, 64, seed, 0);
        let mut seen = HashSet::new();
        for (_, r) in t.tagged_refs() {
            assert!(r.vaddr % 64 == 0);
            assert!(seen.insert(r.vaddr / 64));
        }
        assert_eq!(seen.len(), n);
    });
}

/// `sequential` produces strictly increasing addresses at the stride.
#[test]
fn sequential_is_monotone() {
    check(64, |rng| {
        let iters = rng.gen_range(1usize..50);
        let rpi = rng.gen_range(1usize..8);
        let stride = 1u64 << rng.gen_range(3u32..8);
        let t = synth::sequential(iters, rpi, 1 << 30, stride, 0);
        let addrs: Vec<u64> = t.tagged_refs().map(|(_, r)| r.vaddr).collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], stride);
        }
    });
}

mod codec_props {
    use super::*;
    use sp_trace::codec::{read_trace, write_trace};

    /// Serialization roundtrips exactly for arbitrary traces.
    #[test]
    fn codec_roundtrip() {
        check(64, |rng| {
            let t = arb_trace(rng);
            let mut buf = Vec::new();
            write_trace(&t, &mut buf).unwrap();
            let back = read_trace(&mut buf.as_slice()).unwrap();
            assert_eq!(back.iters, t.iters);
            assert_eq!(back.name, t.name);
        });
    }

    /// Corrupting any single byte never panics — it either still parses
    /// (the flipped bit may land in an address delta) or errors cleanly.
    #[test]
    fn corruption_never_panics() {
        check(64, |rng| {
            let t = arb_trace(rng);
            let pos_seed = rng.gen_range(0usize..10_000);
            let flip = rng.gen_range(1u32..255) as u8;
            let mut buf = Vec::new();
            write_trace(&t, &mut buf).unwrap();
            if buf.len() > 5 {
                let pos = 5 + pos_seed % (buf.len() - 5);
                buf[pos] ^= flip;
                let _ = read_trace(&mut buf.as_slice()); // must not panic
            }
        });
    }
}
