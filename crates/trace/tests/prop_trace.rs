//! Property tests: trace statistics and synthetic-stream guarantees.

use proptest::prelude::*;
use sp_trace::{synth, HotLoopTrace, IterRecord, MemRef};
use std::collections::HashSet;

fn arb_trace() -> impl Strategy<Value = HotLoopTrace> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u64..(1 << 20), 0..4), // backbone addrs
            proptest::collection::vec(0u64..(1 << 20), 0..8), // inner addrs
            0u64..100,                                        // compute
        ),
        0..50,
    )
    .prop_map(|iters| {
        let mut t = HotLoopTrace::new("arb");
        for (bb, inner, compute) in iters {
            t.iters.push(IterRecord {
                backbone: bb.into_iter().map(MemRef::anon).collect(),
                inner: inner.into_iter().map(MemRef::anon).collect(),
                compute_cycles: compute,
            });
        }
        t
    })
}

proptest! {
    /// Stats are internally consistent for arbitrary traces.
    #[test]
    fn stats_consistency(t in arb_trace(), line_log in 5u32..9) {
        let line = 1u64 << line_log;
        let s = t.stats(line);
        prop_assert_eq!(s.total_refs, t.total_refs());
        prop_assert_eq!(s.backbone_refs + s.inner_refs, s.total_refs);
        prop_assert_eq!(s.loads + s.stores, s.total_refs);
        prop_assert!(s.unique_blocks <= s.total_refs);
        prop_assert_eq!(s.footprint_bytes, s.unique_blocks as u64 * line);
        prop_assert_eq!(s.outer_iters, t.outer_iters());
    }

    /// Coarser lines never increase the distinct-block count.
    #[test]
    fn coarser_lines_merge_blocks(t in arb_trace()) {
        let fine = t.stats(64).unique_blocks;
        let coarse = t.stats(256).unique_blocks;
        prop_assert!(coarse <= fine);
    }

    /// `tagged_refs` yields exactly the trace's references in iteration
    /// order with non-decreasing tags.
    #[test]
    fn tagged_refs_in_order(t in arb_trace()) {
        let mut count = 0usize;
        let mut last_tag = 0u32;
        for (tag, _) in t.tagged_refs() {
            prop_assert!(tag >= last_tag);
            prop_assert!((tag as usize) < t.outer_iters());
            last_tag = tag;
            count += 1;
        }
        prop_assert_eq!(count, t.total_refs());
    }

    /// Truncation takes an exact prefix.
    #[test]
    fn truncation_is_prefix(t in arb_trace(), n in 0usize..60) {
        let p = t.truncated(n);
        prop_assert_eq!(p.outer_iters(), n.min(t.outer_iters()));
        for (a, b) in p.iters.iter().zip(&t.iters) {
            prop_assert_eq!(a, b);
        }
    }

    /// `set_hammer` delivers exactly `iters * blocks_per_iter` distinct
    /// blocks, all mapped to the requested set.
    #[test]
    fn set_hammer_guarantees(
        iters in 1usize..40,
        bpi in 1usize..6,
        set_log in 0u32..8,
        sets_log in 3u32..9,
    ) {
        let sets = 1u64 << sets_log;
        let set = (1u64 << set_log).min(sets - 1);
        let t = synth::set_hammer(iters, bpi, set, sets, 64);
        let mut blocks = HashSet::new();
        for (_, r) in t.tagged_refs() {
            prop_assert_eq!((r.block(64) / 64) % sets, set);
            prop_assert!(blocks.insert(r.block(64)));
        }
        prop_assert_eq!(blocks.len(), iters * bpi);
    }

    /// `pointer_chase` visits each node exactly once, whatever the seed.
    #[test]
    fn pointer_chase_is_a_permutation(n in 1usize..200, seed in 0u64..1000) {
        let t = synth::pointer_chase(n, 64, seed, 0);
        let mut seen = HashSet::new();
        for (_, r) in t.tagged_refs() {
            prop_assert!(r.vaddr % 64 == 0);
            prop_assert!(seen.insert(r.vaddr / 64));
        }
        prop_assert_eq!(seen.len(), n);
    }

    /// `sequential` produces strictly increasing addresses at the stride.
    #[test]
    fn sequential_is_monotone(iters in 1usize..50, rpi in 1usize..8, stride_log in 3u32..8) {
        let stride = 1u64 << stride_log;
        let t = synth::sequential(iters, rpi, 1 << 30, stride, 0);
        let addrs: Vec<u64> = t.tagged_refs().map(|(_, r)| r.vaddr).collect();
        for w in addrs.windows(2) {
            prop_assert_eq!(w[1] - w[0], stride);
        }
    }
}

mod codec_props {
    use super::*;
    use sp_trace::codec::{read_trace, write_trace};

    proptest! {
        /// Serialization roundtrips exactly for arbitrary traces.
        #[test]
        fn codec_roundtrip(t in arb_trace()) {
            let mut buf = Vec::new();
            write_trace(&t, &mut buf).unwrap();
            let back = read_trace(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(back.iters, t.iters);
            prop_assert_eq!(back.name, t.name);
        }

        /// Corrupting any single byte never panics — it either still
        /// parses (the flipped bit may land in an address delta) or
        /// errors cleanly.
        #[test]
        fn corruption_never_panics(t in arb_trace(), pos_seed in 0usize..10_000, flip in 1u8..255) {
            let mut buf = Vec::new();
            write_trace(&t, &mut buf).unwrap();
            if buf.len() > 5 {
                let pos = 5 + pos_seed % (buf.len() - 5);
                buf[pos] ^= flip;
                let _ = read_trace(&mut buf.as_slice()); // must not panic
            }
        }
    }
}
