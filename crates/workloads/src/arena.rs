//! A simulated-address-space allocator for workload data structures.
//!
//! Workload traces must carry *addresses* so the cache simulator can map
//! them to sets, but the traces are synthesized rather than recorded from
//! real pointers. The [`Arena`] plays the role of `malloc`: it hands out
//! stable, aligned simulated virtual addresses, and can optionally model
//! heap fragmentation by interposing random gaps between allocations (LDS
//! programs rarely enjoy perfectly contiguous node placement — Olden's
//! allocators intersperse graph nodes with adjacency arrays).

use sp_trace::SmallRng;
use sp_trace::VAddr;

/// A bump allocator over a simulated virtual address space.
#[derive(Debug)]
pub struct Arena {
    cursor: VAddr,
    rng: Option<SmallRng>,
    max_gap: u64,
    allocated: u64,
}

impl Arena {
    /// An arena starting at `base` with contiguous allocation.
    pub fn new(base: VAddr) -> Self {
        Arena {
            cursor: base,
            rng: None,
            max_gap: 0,
            allocated: 0,
        }
    }

    /// An arena that inserts a random gap of up to `max_gap` bytes
    /// (rounded to the allocation's alignment) before each allocation,
    /// modelling heap fragmentation. Deterministic per `seed`.
    pub fn fragmented(base: VAddr, max_gap: u64, seed: u64) -> Self {
        Arena {
            cursor: base,
            rng: Some(SmallRng::seed_from_u64(seed)),
            max_gap,
            allocated: 0,
        }
    }

    /// Allocate `size` bytes aligned to `align` (a power of two); returns
    /// the address of the first byte.
    pub fn alloc(&mut self, size: u64, align: u64) -> VAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(size > 0, "zero-size allocations are not meaningful here");
        if let (Some(rng), true) = (self.rng.as_mut(), self.max_gap > 0) {
            self.cursor += rng.gen_range(0..=self.max_gap);
        }
        let addr = (self.cursor + align - 1) & !(align - 1);
        self.cursor = addr + size;
        self.allocated += size;
        addr
    }

    /// Allocate an array of `count` elements of `elem_size` bytes,
    /// contiguously (arrays are contiguous even in a fragmented heap).
    /// Returns the base address.
    pub fn alloc_array(&mut self, count: u64, elem_size: u64, align: u64) -> VAddr {
        assert!(count > 0);
        self.alloc(count * elem_size, align)
    }

    /// Total bytes handed out (excluding gaps and padding).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Current end of the used address range.
    pub fn high_water(&self) -> VAddr {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_contiguous_and_aligned() {
        let mut a = Arena::new(0x1000);
        let p1 = a.alloc(24, 8);
        let p2 = a.alloc(24, 8);
        assert_eq!(p1, 0x1000);
        assert_eq!(p2, 0x1018);
        assert_eq!(a.allocated_bytes(), 48);
    }

    #[test]
    fn alignment_is_respected() {
        let mut a = Arena::new(0x1001);
        let p = a.alloc(8, 64);
        assert_eq!(p % 64, 0);
        assert_eq!(p, 0x1040);
    }

    #[test]
    fn fragmented_arena_is_deterministic_and_gapped() {
        let mut a = Arena::fragmented(0, 256, 7);
        let mut b = Arena::fragmented(0, 256, 7);
        let pa: Vec<VAddr> = (0..20).map(|_| a.alloc(64, 64)).collect();
        let pb: Vec<VAddr> = (0..20).map(|_| b.alloc(64, 64)).collect();
        assert_eq!(pa, pb);
        // At least one gap larger than the object itself is overwhelmingly
        // likely over 20 draws from [0, 256].
        let gapped = pa.windows(2).any(|w| w[1] - w[0] > 64);
        assert!(gapped, "fragmentation must perturb the layout");
    }

    #[test]
    fn array_allocation_is_contiguous() {
        let mut a = Arena::fragmented(0, 1024, 3);
        let base = a.alloc_array(100, 8, 64);
        // One allocation: elements are contiguous regardless of gaps.
        assert_eq!(base % 64, 0);
        assert_eq!(a.allocated_bytes(), 800);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let mut a = Arena::new(0);
        let _ = a.alloc(8, 3);
    }
}
