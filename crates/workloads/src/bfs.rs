//! Graph BFS over CSR with pointer-chased per-vertex properties.
//!
//! The topology lives in two contiguous CSR arrays (`row_ptr`,
//! `col_idx`) — the regular half of the kernel, friendly to stride
//! prefetchers. The per-vertex property records live behind one pointer
//! indirection each on a fragmented heap, so every edge relaxation
//! dereferences an effectively random address — the irregular half.
//! The hot loop visits vertices in BFS order from vertex 0: pop from
//! the frontier (a sequential array read), read the vertex's CSR row
//! bounds, then per edge read the neighbour id and chase its property
//! record.

use crate::arena::Arena;
use sp_trace::SmallRng;
use sp_trace::{HotLoopTrace, IterRecord, MemRef, VAddr};

/// Reference-site ids used in BFS traces.
pub mod sites {
    use sp_trace::SiteId;
    /// Frontier-array pop `frontier[head]` (backbone).
    pub const FRONTIER: SiteId = SiteId(0);
    /// CSR row-bound read `row_ptr[u]`.
    pub const ROWPTR: SiteId = SiteId(1);
    /// CSR neighbour-id read `col_idx[e]`.
    pub const COLIDX: SiteId = SiteId(2);
    /// Pointer-chased property read `prop[v]->dist`.
    pub const PROP: SiteId = SiteId(3);
}

/// BFS build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsConfig {
    /// Vertex count.
    pub nodes: usize,
    /// Out-degree of every vertex (one edge is reserved to keep the
    /// graph connected, the rest are random).
    pub degree: usize,
    /// RNG seed for edge targets and heap layout.
    pub seed: u64,
    /// Computation cycles per visited vertex (depth bookkeeping).
    pub compute_per_visit: u64,
}

impl BfsConfig {
    /// Default scaled input matched to the scaled cache config.
    pub fn scaled() -> Self {
        BfsConfig {
            nodes: 3072,
            degree: 8,
            seed: 0xBF5,
            compute_per_visit: 4,
        }
    }

    /// A small input for fast tests.
    pub fn tiny() -> Self {
        BfsConfig {
            nodes: 96,
            degree: 4,
            ..Self::scaled()
        }
    }
}

/// A built BFS instance: CSR topology, property layout, visit order.
#[derive(Debug, Clone)]
pub struct Bfs {
    cfg: BfsConfig,
    /// Simulated base address of `row_ptr` (8B entries).
    row_base: VAddr,
    /// Simulated base address of `col_idx` (8B entries).
    col_base: VAddr,
    /// Simulated base address of the frontier array (8B entries).
    frontier_base: VAddr,
    /// Simulated address of each vertex's property record.
    prop_addr: Vec<VAddr>,
    /// CSR adjacency: `adj[row_ptr[u]..row_ptr[u+1]]` conceptually;
    /// stored dense (`degree` edges per vertex).
    adj: Vec<u32>,
    /// BFS visit order from vertex 0 (precomputed, deterministic).
    order: Vec<u32>,
    /// BFS depth per vertex (`u32::MAX` = unreachable; none are).
    depth: Vec<u32>,
}

impl Bfs {
    /// Build the graph and precompute the BFS traversal.
    pub fn build(cfg: BfsConfig) -> Self {
        assert!(cfg.nodes >= 2);
        assert!(cfg.degree >= 1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut arena = Arena::fragmented(0xA00_0000, 128, cfg.seed ^ 0xCB5);
        let n = cfg.nodes;
        let row_base = arena.alloc_array(n as u64 + 1, 8, 64);
        let col_base = arena.alloc_array((n * cfg.degree) as u64, 8, 64);
        let frontier_base = arena.alloc_array(n as u64, 8, 64);
        let prop_addr: Vec<VAddr> = (0..n).map(|_| arena.alloc(64, 64)).collect();
        let mut adj = Vec::with_capacity(n * cfg.degree);
        for u in 0..n {
            // First edge closes a ring so BFS from 0 reaches everyone;
            // the rest are uniform random targets.
            adj.push(((u + 1) % n) as u32);
            for _ in 1..cfg.degree {
                adj.push(rng.gen_range(0..n as u32));
            }
        }
        // Precompute the BFS itself (visit order + depths).
        let mut depth = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(n);
        depth[0] = 0;
        order.push(0u32);
        let mut head = 0usize;
        while head < order.len() {
            let u = order[head] as usize;
            head += 1;
            for &v in &adj[u * cfg.degree..(u + 1) * cfg.degree] {
                if depth[v as usize] == u32::MAX {
                    depth[v as usize] = depth[u] + 1;
                    order.push(v);
                }
            }
        }
        Bfs {
            cfg,
            row_base,
            col_base,
            frontier_base,
            prop_addr,
            adj,
            order,
            depth,
        }
    }

    /// This instance's configuration.
    pub fn config(&self) -> BfsConfig {
        self.cfg
    }

    /// Outer-hot-loop iterations: one per visited vertex (the ring edge
    /// makes the graph connected, so every vertex is visited).
    pub fn hot_iterations(&self) -> usize {
        self.order.len()
    }

    /// Emit the traversal's reference stream.
    pub fn trace(&self) -> HotLoopTrace {
        let mut t = HotLoopTrace::new("bfs::visit");
        t.site_names = vec![
            "frontier[head]".into(),
            "row_ptr[u]".into(),
            "col_idx[e]".into(),
            "prop[v]->dist".into(),
        ];
        t.iters = self.iter_records().collect();
        t
    }

    /// Stream the visit iterations without materializing the trace.
    pub fn iter_records(&self) -> impl Iterator<Item = IterRecord> + '_ {
        let d = self.cfg.degree;
        self.order.iter().enumerate().map(move |(pos, &u)| {
            let u = u as usize;
            let mut inner = vec![MemRef::load(self.row_base + u as u64 * 8, sites::ROWPTR)];
            for (e, &v) in self.adj[u * d..(u + 1) * d].iter().enumerate() {
                inner.push(MemRef::load(
                    self.col_base + (u * d + e) as u64 * 8,
                    sites::COLIDX,
                ));
                inner.push(MemRef::load(self.prop_addr[v as usize], sites::PROP));
            }
            IterRecord {
                backbone: vec![MemRef::load(
                    self.frontier_base + pos as u64 * 8,
                    sites::FRONTIER,
                )],
                inner,
                compute_cycles: self.cfg.compute_per_visit,
            }
        })
    }

    /// Stream `(outer_iteration, reference)` pairs.
    pub fn ref_iter(&self) -> impl Iterator<Item = (u32, MemRef)> + '_ {
        self.iter_records().enumerate().flat_map(|(i, it)| {
            let refs: Vec<MemRef> = it.refs().copied().collect();
            refs.into_iter().map(move |r| (i as u32, r))
        })
    }

    /// Native result: `(visited, depth_checksum)` of the traversal.
    pub fn bfs_native(&self) -> (usize, u64) {
        let sum = self
            .order
            .iter()
            .map(|&v| self.depth[v as usize] as u64)
            .sum();
        (self.order.len(), sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = Bfs::build(BfsConfig::tiny());
        let b = Bfs::build(BfsConfig::tiny());
        assert_eq!(a.adj, b.adj);
        assert_eq!(a.order, b.order);
        assert_eq!(a.prop_addr, b.prop_addr);
    }

    #[test]
    fn ring_edge_makes_every_vertex_reachable() {
        let g = Bfs::build(BfsConfig::tiny());
        assert_eq!(g.hot_iterations(), g.cfg.nodes);
        assert!(g.depth.iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn every_visit_reads_degree_neighbours_and_properties() {
        let g = Bfs::build(BfsConfig::tiny());
        let t = g.trace();
        assert_eq!(t.outer_iters(), g.hot_iterations());
        for it in &t.iters {
            assert_eq!(it.backbone.len(), 1);
            let cols = it.inner.iter().filter(|r| r.site == sites::COLIDX).count();
            let props = it.inner.iter().filter(|r| r.site == sites::PROP).count();
            assert_eq!((cols, props), (g.cfg.degree, g.cfg.degree));
        }
    }

    #[test]
    fn frontier_reads_are_strided() {
        let g = Bfs::build(BfsConfig::tiny());
        let t = g.trace();
        let pops: Vec<VAddr> = t
            .tagged_refs()
            .filter(|(_, r)| r.site == sites::FRONTIER)
            .map(|(_, r)| r.vaddr)
            .collect();
        for w in pops.windows(2) {
            assert_eq!(w[1] - w[0], 8, "frontier pops must be 8B-strided");
        }
    }

    #[test]
    fn property_reads_stay_inside_allocated_records() {
        let g = Bfs::build(BfsConfig::tiny());
        let t = g.trace();
        for (_, r) in t.tagged_refs().filter(|(_, r)| r.site == sites::PROP) {
            assert!(
                g.prop_addr.contains(&r.vaddr),
                "property read at {:#x} is not a record base",
                r.vaddr
            );
        }
    }

    #[test]
    fn native_checksum_is_stable() {
        let g = Bfs::build(BfsConfig::tiny());
        assert_eq!(g.bfs_native(), g.bfs_native());
        assert!(g.bfs_native().1 > 0);
    }
}
