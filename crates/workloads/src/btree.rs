//! B-tree range scan — descend to a leaf, then walk the leaf chain.
//!
//! A bulk-loaded B+-tree over sorted keys: inner nodes hold fanout-many
//! child pointers, leaves hold key runs and a next-leaf pointer. The
//! hot loop drains a batch of range queries: read the query bounds from
//! a sequential array (strided), descend root→leaf (one node record
//! read per level, pointer-chased on a fragmented heap), then walk
//! `span` leaves through the sibling chain, touching each leaf's key
//! area block by block (strided *within* a leaf, irregular *across*
//! leaves — the same regular/irregular split as the other LDS kernels,
//! with the leaf chain giving content-directed prefetchers a stable
//! successor edge to learn).

use crate::arena::Arena;
use sp_trace::SmallRng;
use sp_trace::{HotLoopTrace, IterRecord, MemRef, VAddr};

/// Reference-site ids used in B-tree traces.
pub mod sites {
    use sp_trace::SiteId;
    /// Sequential query-array read `ranges[i]` (backbone).
    pub const QUERY: SiteId = SiteId(0);
    /// Inner-node read during the descent `node->child[k]`.
    pub const INNER: SiteId = SiteId(1);
    /// Leaf-header read `leaf->next` (the sibling chain).
    pub const LEAF: SiteId = SiteId(2);
    /// Leaf key-area read `leaf->keys[k]`.
    pub const KEYS: SiteId = SiteId(3);
}

/// B-tree build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeConfig {
    /// Total key count (keys are `0..keys`, bulk-loaded in order).
    pub keys: usize,
    /// Keys per leaf and children per inner node.
    pub fanout: usize,
    /// Number of range scans the hot loop performs.
    pub scans: usize,
    /// Leaves walked per scan (range width).
    pub span: usize,
    /// RNG seed for heap layout and scan start keys.
    pub seed: u64,
    /// Computation cycles per scanned leaf (key aggregation).
    pub compute_per_leaf: u64,
}

impl BTreeConfig {
    /// Default scaled input matched to the scaled cache config.
    pub fn scaled() -> Self {
        BTreeConfig {
            keys: 8192,
            fanout: 16,
            scans: 2048,
            span: 4,
            seed: 0xB3E,
            compute_per_leaf: 6,
        }
    }

    /// A small input for fast tests.
    pub fn tiny() -> Self {
        BTreeConfig {
            keys: 256,
            fanout: 8,
            scans: 64,
            span: 3,
            ..Self::scaled()
        }
    }
}

/// A built B-tree plus its range-scan batch.
#[derive(Debug, Clone)]
pub struct BTree {
    cfg: BTreeConfig,
    /// Simulated base address of the query array (16B per range).
    query_base: VAddr,
    /// Simulated address of each leaf record (header + key area).
    leaf_addr: Vec<VAddr>,
    /// Per-level inner-node addresses, `inner_addr[0]` = the root's
    /// level, deeper levels follow; an empty vec for a single-leaf tree.
    inner_addr: Vec<Vec<VAddr>>,
    /// First leaf index of each scan.
    scan_start: Vec<u32>,
}

impl BTree {
    /// Bytes per leaf record: a 64B header then the key area.
    const HEADER: u64 = 64;

    /// Build the tree layout and the scan batch.
    pub fn build(cfg: BTreeConfig) -> Self {
        assert!(cfg.keys >= 1);
        assert!(cfg.fanout >= 2, "fanout must be at least 2");
        assert!(cfg.scans >= 1 && cfg.span >= 1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut arena = Arena::fragmented(0xC00_0000, 128, cfg.seed ^ 0xB7E);
        let query_base = arena.alloc_array(cfg.scans as u64, 16, 64);
        let leaves = cfg.keys.div_ceil(cfg.fanout);
        let leaf_bytes = Self::HEADER + cfg.fanout as u64 * 8;
        let leaf_addr: Vec<VAddr> = (0..leaves).map(|_| arena.alloc(leaf_bytes, 64)).collect();
        // Inner levels, bottom-up: each level groups `fanout` children.
        let mut inner_addr: Vec<Vec<VAddr>> = Vec::new();
        let mut width = leaves;
        while width > 1 {
            width = width.div_ceil(cfg.fanout);
            inner_addr.push((0..width).map(|_| arena.alloc(128, 64)).collect());
        }
        inner_addr.reverse(); // root level first
        let scan_start = (0..cfg.scans)
            .map(|_| rng.gen_range(0..leaves as u32))
            .collect();
        BTree {
            cfg,
            query_base,
            leaf_addr,
            inner_addr,
            scan_start,
        }
    }

    /// This instance's configuration.
    pub fn config(&self) -> BTreeConfig {
        self.cfg
    }

    /// Outer-hot-loop iterations: one per range scan.
    pub fn hot_iterations(&self) -> usize {
        self.cfg.scans
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.leaf_addr.len()
    }

    /// Tree depth in inner levels (0 = the root is a leaf).
    pub fn depth(&self) -> usize {
        self.inner_addr.len()
    }

    /// Emit the scan batch's reference stream.
    pub fn trace(&self) -> HotLoopTrace {
        let mut t = HotLoopTrace::new("btree::range_scan");
        t.site_names = vec![
            "ranges[i]".into(),
            "node->child[k]".into(),
            "leaf->next".into(),
            "leaf->keys[k]".into(),
        ];
        t.iters = self.iter_records().collect();
        t
    }

    /// Stream the scan iterations without materializing the trace.
    pub fn iter_records(&self) -> impl Iterator<Item = IterRecord> + '_ {
        let line_blocks = (self.cfg.fanout as u64 * 8).div_ceil(64);
        self.scan_start.iter().enumerate().map(move |(i, &start)| {
            let mut inner = Vec::new();
            // Descent: at each inner level read the node covering the
            // target leaf.
            for lvl in self.inner_addr.iter() {
                let per_node = self.leaf_addr.len().div_ceil(lvl.len());
                let node = (start as usize / per_node.max(1)).min(lvl.len() - 1);
                inner.push(MemRef::load(lvl[node], sites::INNER));
            }
            // Leaf walk: header (chain pointer) then the key area.
            for l in 0..self.cfg.span {
                let leaf = (start as usize + l) % self.leaf_addr.len();
                let base = self.leaf_addr[leaf];
                inner.push(MemRef::load(base, sites::LEAF));
                for blk in 0..line_blocks {
                    inner.push(MemRef::load(base + Self::HEADER + blk * 64, sites::KEYS));
                }
            }
            IterRecord {
                backbone: vec![MemRef::load(self.query_base + i as u64 * 16, sites::QUERY)],
                inner,
                compute_cycles: self.cfg.compute_per_leaf * self.cfg.span as u64,
            }
        })
    }

    /// Stream `(outer_iteration, reference)` pairs.
    pub fn ref_iter(&self) -> impl Iterator<Item = (u32, MemRef)> + '_ {
        self.iter_records().enumerate().flat_map(|(i, it)| {
            let refs: Vec<MemRef> = it.refs().copied().collect();
            refs.into_iter().map(move |r| (i as u32, r))
        })
    }

    /// Native result: sum over all scans of the keys in range (keys are
    /// `0..keys` bulk-loaded `fanout` per leaf, wrapping like the walk).
    pub fn scan_native(&self) -> u64 {
        let leaves = self.leaf_addr.len();
        let mut total = 0u64;
        for &start in &self.scan_start {
            for l in 0..self.cfg.span {
                let leaf = (start as usize + l) % leaves;
                for k in 0..self.cfg.fanout {
                    let key = leaf * self.cfg.fanout + k;
                    if key < self.cfg.keys {
                        total = total.wrapping_add(key as u64);
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = BTree::build(BTreeConfig::tiny());
        let b = BTree::build(BTreeConfig::tiny());
        assert_eq!(a.leaf_addr, b.leaf_addr);
        assert_eq!(a.scan_start, b.scan_start);
    }

    #[test]
    fn tree_shape_matches_fanout() {
        let t = BTree::build(BTreeConfig::tiny());
        assert_eq!(t.leaves(), t.cfg.keys.div_ceil(t.cfg.fanout));
        // 256 keys / fanout 8 = 32 leaves -> 4 inner -> 1 root.
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn every_scan_descends_then_walks_span_leaves() {
        let b = BTree::build(BTreeConfig::tiny());
        let t = b.trace();
        assert_eq!(t.outer_iters(), b.hot_iterations());
        for it in &t.iters {
            assert_eq!(it.backbone.len(), 1);
            let inner = it.inner.iter().filter(|r| r.site == sites::INNER).count();
            let leafs = it.inner.iter().filter(|r| r.site == sites::LEAF).count();
            assert_eq!(inner, b.depth(), "one inner read per level");
            assert_eq!(leafs, b.cfg.span, "one header read per walked leaf");
        }
    }

    #[test]
    fn key_reads_stay_inside_their_leaf() {
        let b = BTree::build(BTreeConfig::tiny());
        let t = b.trace();
        let leaf_bytes = BTree::HEADER + b.cfg.fanout as u64 * 8;
        for (_, r) in t.tagged_refs().filter(|(_, r)| r.site == sites::KEYS) {
            let ok = b
                .leaf_addr
                .iter()
                .any(|&base| r.vaddr >= base + BTree::HEADER && r.vaddr < base + leaf_bytes);
            assert!(ok, "key read at {:#x} outside every leaf", r.vaddr);
        }
    }

    #[test]
    fn scan_checksum_is_stable() {
        let b = BTree::build(BTreeConfig::tiny());
        assert_eq!(b.scan_native(), b.scan_native());
        assert!(b.scan_native() > 0);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn degenerate_fanout_rejected() {
        let _ = BTree::build(BTreeConfig {
            fanout: 1,
            ..BTreeConfig::tiny()
        });
    }
}
