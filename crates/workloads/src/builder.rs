//! Declarative workload construction: the `WorkloadBuilder`/`KernelSpec`
//! layer.
//!
//! The original harness dispatched on the [`Benchmark`]
//! enum with one hard-coded match arm per (kernel, scale) pair — every
//! new kernel or scale doubled the copy-pasted constructors. This module
//! replaces that with a declarative spec: pick a [`KernelKind`], a
//! [`ScaleTier`], optionally a seed override, and [`KernelSpec::build`]
//! resolves the per-kernel config and returns a uniform [`BuiltKernel`]
//! handle. [`Workload`](crate::Workload) and
//! [`Candidate`] keep their old signatures as thin
//! shims over this layer.
//!
//! The kind space is the full workload frontier: the paper's trio, the
//! §IV.B screening candidates, and the four LDS kernels (hash-join
//! probe, BFS over CSR, skip-list search, B-tree range scan) added for
//! the prefetcher-backend comparison. Every kernel emits a deterministic
//! [`HotLoopTrace`] with backbone/inner delinquent-load structure, so
//! `recommend_distance` and the Set-Affinity bound apply unchanged.

use crate::bfs::{Bfs, BfsConfig};
use crate::btree::{BTree, BTreeConfig};
use crate::em3d::{Em3d, Em3dConfig};
use crate::hashjoin::{HashJoin, HashJoinConfig};
use crate::health::{Health, HealthConfig};
use crate::matmul::{Matmul, MatmulConfig};
use crate::mcf::{Mcf, McfConfig};
use crate::mst::{Mst, MstConfig};
use crate::skiplist::{SkipList, SkipListConfig};
use crate::treeadd::{TreeAdd, TreeAddConfig};
use crate::{Benchmark, Candidate};
use sp_trace::HotLoopTrace;

/// Every kernel the builder can construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Olden EM3D (paper trio).
    Em3d,
    /// SPEC2006 MCF pricing kernel (paper trio).
    Mcf,
    /// Olden MST (paper trio).
    Mst,
    /// Olden TreeAdd (screening candidate).
    TreeAdd,
    /// Olden Health (screening candidate).
    Health,
    /// Blocked dense matmul (screening candidate, compute-bound).
    Matmul,
    /// Hash-join probe (LDS frontier).
    HashJoin,
    /// BFS over CSR with pointer-chased properties (LDS frontier).
    Bfs,
    /// Skip-list search (LDS frontier).
    SkipList,
    /// B-tree range scan (LDS frontier).
    BTree,
}

impl KernelKind {
    /// Every kernel: paper trio, screening candidates, LDS frontier.
    pub const ALL: [KernelKind; 10] = [
        KernelKind::Em3d,
        KernelKind::Mcf,
        KernelKind::Mst,
        KernelKind::TreeAdd,
        KernelKind::Health,
        KernelKind::Matmul,
        KernelKind::HashJoin,
        KernelKind::Bfs,
        KernelKind::SkipList,
        KernelKind::BTree,
    ];

    /// The four LDS-frontier kernels, in sweep order.
    pub const LDS: [KernelKind; 4] = [
        KernelKind::HashJoin,
        KernelKind::Bfs,
        KernelKind::SkipList,
        KernelKind::BTree,
    ];

    /// Display name (the spelling tables and reports use).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Em3d => "EM3D",
            KernelKind::Mcf => "MCF",
            KernelKind::Mst => "MST",
            KernelKind::TreeAdd => "TreeAdd",
            KernelKind::Health => "Health",
            KernelKind::Matmul => "MatMul",
            KernelKind::HashJoin => "HashJoin",
            KernelKind::Bfs => "BFS",
            KernelKind::SkipList => "SkipList",
            KernelKind::BTree => "BTree",
        }
    }

    /// Flag spelling (`--bench` values and serve request names).
    pub fn flag(self) -> &'static str {
        match self {
            KernelKind::Em3d => "em3d",
            KernelKind::Mcf => "mcf",
            KernelKind::Mst => "mst",
            KernelKind::TreeAdd => "treeadd",
            KernelKind::Health => "health",
            KernelKind::Matmul => "matmul",
            KernelKind::HashJoin => "hashjoin",
            KernelKind::Bfs => "bfs",
            KernelKind::SkipList => "skiplist",
            KernelKind::BTree => "btree",
        }
    }

    /// Parse a flag spelling; the error lists every valid kernel.
    pub fn parse(s: &str) -> Result<KernelKind, String> {
        KernelKind::ALL
            .into_iter()
            .find(|k| k.flag() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = KernelKind::ALL.iter().map(|k| k.flag()).collect();
                format!("unknown benchmark {s}; expected {}", names.join("|"))
            })
    }

    /// The paper [`Benchmark`] this kernel corresponds to, if any.
    pub fn benchmark(self) -> Option<Benchmark> {
        match self {
            KernelKind::Em3d => Some(Benchmark::Em3d),
            KernelKind::Mcf => Some(Benchmark::Mcf),
            KernelKind::Mst => Some(Benchmark::Mst),
            _ => None,
        }
    }

    /// The kernel for a paper [`Benchmark`].
    pub fn from_benchmark(b: Benchmark) -> KernelKind {
        match b {
            Benchmark::Em3d => KernelKind::Em3d,
            Benchmark::Mcf => KernelKind::Mcf,
            Benchmark::Mst => KernelKind::Mst,
        }
    }

    /// The kernel for a §IV.B screening [`Candidate`].
    pub fn from_candidate(c: Candidate) -> KernelKind {
        match c {
            Candidate::Em3d => KernelKind::Em3d,
            Candidate::Mcf => KernelKind::Mcf,
            Candidate::Mst => KernelKind::Mst,
            Candidate::TreeAdd => KernelKind::TreeAdd,
            Candidate::Health => KernelKind::Health,
            Candidate::Matmul => KernelKind::Matmul,
        }
    }

    /// `true` for the LDS-frontier kernels.
    pub fn is_lds(self) -> bool {
        KernelKind::LDS.contains(&self)
    }
}

/// Which input size a spec resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleTier {
    /// Seconds-fast test inputs (`*Config::tiny()`).
    Tiny,
    /// The default reproduction scale (`*Config::scaled()`).
    Scaled,
}

/// A resolved kernel specification: kind + scale + optional seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelSpec {
    /// Which kernel.
    pub kind: KernelKind,
    /// Which input size.
    pub tier: ScaleTier,
    /// Seed override for layout/wiring randomness; `None` keeps the
    /// kernel's pinned default (MatMul is seedless — ignored there).
    pub seed: Option<u64>,
}

impl KernelSpec {
    /// Spec at the default reproduction scale.
    pub fn scaled(kind: KernelKind) -> Self {
        KernelSpec {
            kind,
            tier: ScaleTier::Scaled,
            seed: None,
        }
    }

    /// Spec at the fast test scale.
    pub fn tiny(kind: KernelKind) -> Self {
        KernelSpec {
            kind,
            tier: ScaleTier::Tiny,
            seed: None,
        }
    }

    /// Build the kernel instance this spec describes.
    pub fn build(&self) -> BuiltKernel {
        let tiny = self.tier == ScaleTier::Tiny;
        match self.kind {
            KernelKind::Em3d => {
                let mut c = if tiny {
                    Em3dConfig::tiny()
                } else {
                    Em3dConfig::scaled()
                };
                if let Some(s) = self.seed {
                    c.seed = s;
                }
                BuiltKernel::Em3d(Em3d::build(c))
            }
            KernelKind::Mcf => {
                let mut c = if tiny {
                    McfConfig::tiny()
                } else {
                    McfConfig::scaled()
                };
                if let Some(s) = self.seed {
                    c.seed = s;
                }
                BuiltKernel::Mcf(Mcf::build(c))
            }
            KernelKind::Mst => {
                let mut c = if tiny {
                    MstConfig::tiny()
                } else {
                    MstConfig::scaled()
                };
                if let Some(s) = self.seed {
                    c.seed = s;
                }
                BuiltKernel::Mst(Mst::build(c))
            }
            KernelKind::TreeAdd => {
                let mut c = if tiny {
                    TreeAddConfig::tiny()
                } else {
                    TreeAddConfig::scaled()
                };
                if let Some(s) = self.seed {
                    c.seed = s;
                }
                BuiltKernel::TreeAdd(TreeAdd::build(c))
            }
            KernelKind::Health => {
                let mut c = if tiny {
                    HealthConfig::tiny()
                } else {
                    HealthConfig::scaled()
                };
                if let Some(s) = self.seed {
                    c.seed = s;
                }
                BuiltKernel::Health(Health::build(c))
            }
            KernelKind::Matmul => {
                let c = if tiny {
                    MatmulConfig::tiny()
                } else {
                    MatmulConfig::scaled()
                };
                BuiltKernel::Matmul(Matmul::build(c))
            }
            KernelKind::HashJoin => {
                let mut c = if tiny {
                    HashJoinConfig::tiny()
                } else {
                    HashJoinConfig::scaled()
                };
                if let Some(s) = self.seed {
                    c.seed = s;
                }
                BuiltKernel::HashJoin(HashJoin::build(c))
            }
            KernelKind::Bfs => {
                let mut c = if tiny {
                    BfsConfig::tiny()
                } else {
                    BfsConfig::scaled()
                };
                if let Some(s) = self.seed {
                    c.seed = s;
                }
                BuiltKernel::Bfs(Bfs::build(c))
            }
            KernelKind::SkipList => {
                let mut c = if tiny {
                    SkipListConfig::tiny()
                } else {
                    SkipListConfig::scaled()
                };
                if let Some(s) = self.seed {
                    c.seed = s;
                }
                BuiltKernel::SkipList(SkipList::build(c))
            }
            KernelKind::BTree => {
                let mut c = if tiny {
                    BTreeConfig::tiny()
                } else {
                    BTreeConfig::scaled()
                };
                if let Some(s) = self.seed {
                    c.seed = s;
                }
                BuiltKernel::BTree(BTree::build(c))
            }
        }
    }

    /// Build and trace in one step.
    pub fn trace(&self) -> HotLoopTrace {
        self.build().trace()
    }
}

/// Fluent front end over [`KernelSpec`].
///
/// ```
/// use sp_workloads::{KernelKind, ScaleTier, WorkloadBuilder};
/// let trace = WorkloadBuilder::new(KernelKind::HashJoin)
///     .tier(ScaleTier::Tiny)
///     .seed(7)
///     .trace();
/// assert!(trace.total_refs() > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorkloadBuilder {
    spec: KernelSpec,
}

impl WorkloadBuilder {
    /// Start a builder for `kind` at the default reproduction scale.
    pub fn new(kind: KernelKind) -> Self {
        WorkloadBuilder {
            spec: KernelSpec::scaled(kind),
        }
    }

    /// Select the input size.
    pub fn tier(mut self, tier: ScaleTier) -> Self {
        self.spec.tier = tier;
        self
    }

    /// Override the layout/wiring seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = Some(seed);
        self
    }

    /// The resolved spec.
    pub fn spec(self) -> KernelSpec {
        self.spec
    }

    /// Build the kernel instance.
    pub fn build(self) -> BuiltKernel {
        self.spec.build()
    }

    /// Build and trace in one step.
    pub fn trace(self) -> HotLoopTrace {
        self.spec.trace()
    }
}

/// A built kernel instance behind one uniform handle.
pub enum BuiltKernel {
    /// EM3D instance.
    Em3d(Em3d),
    /// MCF instance.
    Mcf(Mcf),
    /// MST instance.
    Mst(Mst),
    /// TreeAdd instance.
    TreeAdd(TreeAdd),
    /// Health instance.
    Health(Health),
    /// MatMul instance.
    Matmul(Matmul),
    /// Hash-join instance.
    HashJoin(HashJoin),
    /// BFS instance.
    Bfs(Bfs),
    /// Skip-list instance.
    SkipList(SkipList),
    /// B-tree instance.
    BTree(BTree),
}

impl BuiltKernel {
    /// Which kernel this is.
    pub fn kind(&self) -> KernelKind {
        match self {
            BuiltKernel::Em3d(_) => KernelKind::Em3d,
            BuiltKernel::Mcf(_) => KernelKind::Mcf,
            BuiltKernel::Mst(_) => KernelKind::Mst,
            BuiltKernel::TreeAdd(_) => KernelKind::TreeAdd,
            BuiltKernel::Health(_) => KernelKind::Health,
            BuiltKernel::Matmul(_) => KernelKind::Matmul,
            BuiltKernel::HashJoin(_) => KernelKind::HashJoin,
            BuiltKernel::Bfs(_) => KernelKind::Bfs,
            BuiltKernel::SkipList(_) => KernelKind::SkipList,
            BuiltKernel::BTree(_) => KernelKind::BTree,
        }
    }

    /// The hot loop's reference stream.
    pub fn trace(&self) -> HotLoopTrace {
        match self {
            BuiltKernel::Em3d(w) => w.trace(),
            BuiltKernel::Mcf(w) => w.trace(),
            BuiltKernel::Mst(w) => w.trace(),
            BuiltKernel::TreeAdd(w) => w.trace(),
            BuiltKernel::Health(w) => w.trace(),
            BuiltKernel::Matmul(w) => w.trace(),
            BuiltKernel::HashJoin(w) => w.trace(),
            BuiltKernel::Bfs(w) => w.trace(),
            BuiltKernel::SkipList(w) => w.trace(),
            BuiltKernel::BTree(w) => w.trace(),
        }
    }

    /// Outer-hot-loop iterations.
    pub fn hot_iterations(&self) -> usize {
        match self {
            BuiltKernel::Em3d(w) => w.hot_iterations(),
            BuiltKernel::Mcf(w) => w.hot_iterations(),
            BuiltKernel::Mst(w) => w.hot_iterations(),
            BuiltKernel::TreeAdd(w) => w.hot_iterations(),
            BuiltKernel::Health(w) => w.hot_iterations(),
            BuiltKernel::Matmul(w) => w.hot_iterations(),
            BuiltKernel::HashJoin(w) => w.hot_iterations(),
            BuiltKernel::Bfs(w) => w.hot_iterations(),
            BuiltKernel::SkipList(w) => w.hot_iterations(),
            BuiltKernel::BTree(w) => w.hot_iterations(),
        }
    }

    /// Input description (Table 2 style) for reports.
    pub fn input_description(&self) -> String {
        match self {
            BuiltKernel::Em3d(w) => {
                let c = w.config();
                format!("{} nodes, arity {}", c.nodes, c.degree)
            }
            BuiltKernel::Mcf(w) => {
                let c = w.config();
                format!("{} arcs, {} nodes", c.arcs, c.nodes)
            }
            BuiltKernel::Mst(w) => format!("{} nodes", w.config().nodes),
            BuiltKernel::TreeAdd(w) => format!("depth {}", w.config().depth),
            BuiltKernel::Health(w) => {
                let c = w.config();
                format!("{} levels, {} steps", c.levels, c.steps)
            }
            BuiltKernel::Matmul(w) => {
                let c = w.config();
                format!("{}x{}, block {}", c.n, c.n, c.block)
            }
            BuiltKernel::HashJoin(w) => {
                let c = w.config();
                format!(
                    "{} build, {} probe, {} buckets",
                    c.build, c.probe, c.buckets
                )
            }
            BuiltKernel::Bfs(w) => {
                let c = w.config();
                format!("{} nodes, degree {}", c.nodes, c.degree)
            }
            BuiltKernel::SkipList(w) => {
                let c = w.config();
                format!("{} nodes, {} searches", c.nodes, c.searches)
            }
            BuiltKernel::BTree(w) => {
                let c = w.config();
                format!("{} keys, fanout {}, {} scans", c.keys, c.fanout, c.scans)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_traces_at_tiny_scale() {
        for kind in KernelKind::ALL {
            let k = KernelSpec::tiny(kind).build();
            assert_eq!(k.kind(), kind);
            let t = k.trace();
            assert!(t.total_refs() > 0, "{}", kind.name());
            assert_eq!(t.outer_iters(), k.hot_iterations(), "{}", kind.name());
            assert!(!k.input_description().is_empty());
        }
    }

    #[test]
    fn flags_round_trip_and_unknowns_list_the_valid_set() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::parse(kind.flag()), Ok(kind));
        }
        let err = KernelKind::parse("warp").unwrap_err();
        assert!(err.contains("unknown benchmark warp"), "{err}");
        for kind in KernelKind::ALL {
            assert!(err.contains(kind.flag()), "{err} missing {}", kind.flag());
        }
    }

    #[test]
    fn seed_override_changes_lds_layouts_deterministically() {
        for kind in KernelKind::LDS {
            let base = KernelSpec::tiny(kind).trace();
            let again = KernelSpec::tiny(kind).trace();
            assert_eq!(
                sp_trace::codec::digest(&base),
                sp_trace::codec::digest(&again),
                "{}: same spec must trace identically",
                kind.name()
            );
            let reseeded = WorkloadBuilder::new(kind)
                .tier(ScaleTier::Tiny)
                .seed(0xFEED)
                .trace();
            assert_ne!(
                sp_trace::codec::digest(&base),
                sp_trace::codec::digest(&reseeded),
                "{}: the seed override must reach the layout",
                kind.name()
            );
        }
    }

    #[test]
    fn trio_and_candidate_mappings_agree() {
        for b in Benchmark::ALL {
            assert_eq!(KernelKind::from_benchmark(b).benchmark(), Some(b));
        }
        for c in Candidate::ALL {
            assert_eq!(KernelKind::from_candidate(c).name(), c.name());
        }
        assert!(KernelKind::HashJoin.is_lds());
        assert!(!KernelKind::Em3d.is_lds());
    }
}
