//! EM3D (Olden) — electromagnetic wave propagation on a bipartite graph.
//!
//! The paper's running example (Fig. 1): the hot loop walks the node list
//! (`curr_node = curr_node->next`) and, per node, an inner loop walks the
//! `from_values` dependency array and dereferences each referenced node —
//! the two delinquent loads. EM3D has the *smallest* Set Affinity of the
//! three benchmarks (paper Table 2: range [40, 360]) because each outer
//! iteration touches many distinct blocks (the node, its `from_values`
//! and `coeffs` arrays, and `degree` scattered remote nodes).

use crate::arena::Arena;
use sp_trace::SmallRng;
use sp_trace::{HotLoopTrace, IterRecord, MemRef, VAddr};

/// Reference-site ids used in EM3D traces.
pub mod sites {
    use sp_trace::SiteId;
    /// `curr_node = curr_node->next` (outer-loop backbone).
    pub const NEXT: SiteId = SiteId(0);
    /// `other_node = curr_node->from_values[j]` (delinquent: array elem).
    pub const FROM_VALUES: SiteId = SiteId(1);
    /// `... = other_node->value` (delinquent: remote node field).
    pub const OTHER_VALUE: SiteId = SiteId(2);
    /// `... = curr_node->coeffs[j]`.
    pub const COEFF: SiteId = SiteId(3);
    /// `curr_node->value = acc` (result store).
    pub const VALUE_STORE: SiteId = SiteId(4);
}

/// EM3D build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Em3dConfig {
    /// Total node count (both halves of the bipartite graph).
    pub nodes: usize,
    /// In-degree of every node ("arity").
    pub degree: usize,
    /// RNG seed for graph wiring and heap layout.
    pub seed: u64,
    /// Model heap fragmentation (random inter-allocation gaps).
    pub fragmented: bool,
    /// Pure computation cycles per inner-loop element (the multiply-add);
    /// EM3D's CALR is very low, so this is small.
    pub compute_per_edge: u64,
    /// Allocate the native value/coefficient arrays. Disabled for
    /// paper-scale layout-only builds (the arity-128 coefficient array
    /// alone would be ~400MB).
    pub native: bool,
}

impl Em3dConfig {
    /// Default scaled input, matched to
    /// [`CacheConfig::scaled_default`](../../sp_cachesim/config/struct.CacheConfig.html):
    /// per-set block pressure in the paper's EM3D regime.
    pub fn scaled() -> Self {
        Em3dConfig {
            nodes: 4096,
            degree: 16,
            seed: 0xE3D,
            fragmented: true,
            compute_per_edge: 2,
            native: true,
        }
    }

    /// The paper's input (Table 2): 4x10^5 nodes, arity 128. Big — only
    /// for explicitly requested paper-scale runs.
    pub fn paper() -> Self {
        Em3dConfig {
            nodes: 400_000,
            degree: 128,
            native: false,
            ..Self::scaled()
        }
    }

    /// A small input for fast tests.
    pub fn tiny() -> Self {
        Em3dConfig {
            nodes: 128,
            degree: 4,
            ..Self::scaled()
        }
    }
}

/// A built EM3D graph: simulated layout + native arrays.
#[derive(Debug, Clone)]
pub struct Em3d {
    cfg: Em3dConfig,
    /// Simulated address of each node header.
    node_addr: Vec<VAddr>,
    /// Simulated base address of each node's `from_values` array.
    fv_addr: Vec<VAddr>,
    /// Simulated base address of each node's `coeffs` array.
    coeff_addr: Vec<VAddr>,
    /// Flattened neighbour indices: node `i`'s neighbours are
    /// `from[i*degree .. (i+1)*degree]`, all in the opposite half.
    pub from: Vec<u32>,
    /// Native node values (updated by [`compute_native`](Self::compute_native)).
    pub values: Vec<f64>,
    /// Native coefficients, flattened like `from`.
    pub coeffs: Vec<f64>,
}

impl Em3d {
    /// Build the graph (the Olden `make_graph` phase).
    pub fn build(cfg: Em3dConfig) -> Self {
        assert!(
            cfg.nodes >= 2 && cfg.nodes.is_multiple_of(2),
            "need an even node count >= 2"
        );
        assert!(cfg.degree >= 1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut arena = if cfg.fragmented {
            Arena::fragmented(0x10_0000, 192, cfg.seed ^ 0x5EED)
        } else {
            Arena::new(0x10_0000)
        };
        let n = cfg.nodes;
        let half = n / 2;
        let mut node_addr = Vec::with_capacity(n);
        let mut fv_addr = Vec::with_capacity(n);
        let mut coeff_addr = Vec::with_capacity(n);
        // Olden allocates each node together with its arrays; nodes end up
        // interleaved with their adjacency data on the heap.
        for _ in 0..n {
            node_addr.push(arena.alloc(64, 64));
            fv_addr.push(arena.alloc_array(cfg.degree as u64, 8, 8));
            coeff_addr.push(arena.alloc_array(cfg.degree as u64, 8, 8));
        }
        let mut from = Vec::with_capacity(n * cfg.degree);
        for i in 0..n {
            // E nodes (first half) depend on H nodes (second half) and
            // vice versa.
            let (lo, hi) = if i < half { (half, n) } else { (0, half) };
            for _ in 0..cfg.degree {
                from.push(rng.gen_range(lo..hi) as u32);
            }
        }
        let (values, coeffs) = if cfg.native {
            (
                (0..n).map(|i| (i as f64).sin()).collect(),
                (0..n * cfg.degree)
                    .map(|i| 1.0 / (1.0 + i as f64))
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        Em3d {
            cfg,
            node_addr,
            fv_addr,
            coeff_addr,
            from,
            values,
            coeffs,
        }
    }

    /// This graph's configuration.
    pub fn config(&self) -> Em3dConfig {
        self.cfg
    }

    /// Number of outer-hot-loop iterations of one `compute_nodes` pass
    /// (= node count; paper Table 2 column 3).
    pub fn hot_iterations(&self) -> usize {
        self.cfg.nodes
    }

    /// The [`IterRecord`] of one outer iteration (node `i`), built on
    /// demand — the shared source for both [`trace`](Self::trace) and the
    /// streaming [`iter_records`](Self::iter_records).
    fn iter_record(&self, i: usize) -> IterRecord {
        let d = self.cfg.degree;
        let mut inner = Vec::with_capacity(3 * d + 1);
        for j in 0..d {
            inner.push(MemRef::load(
                self.fv_addr[i] + 8 * j as u64,
                sites::FROM_VALUES,
            ));
            let other = self.from[i * d + j] as usize;
            inner.push(MemRef::load(self.node_addr[other], sites::OTHER_VALUE));
            inner.push(MemRef::load(
                self.coeff_addr[i] + 8 * j as u64,
                sites::COEFF,
            ));
        }
        inner.push(MemRef::store(self.node_addr[i], sites::VALUE_STORE));
        IterRecord {
            backbone: vec![MemRef::load(self.node_addr[i], sites::NEXT)],
            inner,
            compute_cycles: self.cfg.compute_per_edge * d as u64,
        }
    }

    /// Stream the hot loop's iterations without materializing the whole
    /// trace — the memory-safe path for paper-scale inputs (a 4x10^5
    /// node, arity-128 trace would otherwise occupy several GB).
    pub fn iter_records(&self) -> impl Iterator<Item = IterRecord> + '_ {
        (0..self.cfg.nodes).map(|i| self.iter_record(i))
    }

    /// Stream `(outer_iteration, reference)` pairs — what the Set
    /// Affinity analysis consumes.
    pub fn ref_iter(&self) -> impl Iterator<Item = (u32, MemRef)> + '_ {
        self.iter_records().enumerate().flat_map(|(i, it)| {
            let refs: Vec<MemRef> = it.refs().copied().collect();
            refs.into_iter().map(move |r| (i as u32, r))
        })
    }

    /// Emit the reference stream of one `compute_nodes` pass — the
    /// paper's hot loop (Fig. 1(a)).
    pub fn trace(&self) -> HotLoopTrace {
        let mut t = HotLoopTrace::new("em3d::compute_nodes");
        t.site_names = vec![
            "curr_node->next".into(),
            "curr_node->from_values[j]".into(),
            "other_node->value".into(),
            "curr_node->coeffs[j]".into(),
            "curr_node->value (store)".into(),
        ];
        t.iters = self.iter_records().collect();
        t
    }

    /// Run one real `compute_nodes` pass over the native arrays; returns
    /// a checksum so the work cannot be optimized away.
    pub fn compute_native(&mut self) -> f64 {
        assert!(self.cfg.native, "built without native arrays (layout-only)");
        let d = self.cfg.degree;
        let mut check = 0.0;
        for i in 0..self.cfg.nodes {
            let mut acc = 0.0;
            let base = i * d;
            for j in 0..d {
                let other = self.from[base + j] as usize;
                acc += self.coeffs[base + j] * self.values[other];
            }
            self.values[i] = acc;
            check += acc;
        }
        check
    }

    /// Neighbour indices of node `i` (for the native helper thread).
    pub fn neighbours(&self, i: usize) -> &[u32] {
        let d = self.cfg.degree;
        &self.from[i * d..(i + 1) * d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = Em3d::build(Em3dConfig::tiny());
        let b = Em3d::build(Em3dConfig::tiny());
        assert_eq!(a.from, b.from);
        assert_eq!(a.node_addr, b.node_addr);
    }

    #[test]
    fn graph_is_bipartite() {
        let g = Em3d::build(Em3dConfig::tiny());
        let half = g.cfg.nodes / 2;
        for i in 0..g.cfg.nodes {
            for &o in g.neighbours(i) {
                let o = o as usize;
                assert_ne!(i < half, o < half, "edges must cross the partition");
            }
        }
    }

    #[test]
    fn trace_shape_matches_fig1() {
        let g = Em3d::build(Em3dConfig::tiny());
        let t = g.trace();
        assert_eq!(t.outer_iters(), g.hot_iterations());
        for it in &t.iters {
            assert_eq!(it.backbone.len(), 1, "one next-pointer chase per iteration");
            // degree * (from_values + other + coeff) + the value store.
            assert_eq!(it.inner.len(), 3 * g.cfg.degree + 1);
            assert_eq!(
                it.compute_cycles,
                g.cfg.compute_per_edge * g.cfg.degree as u64
            );
        }
    }

    #[test]
    fn from_values_loads_are_sequential_within_an_iteration() {
        let g = Em3d::build(Em3dConfig::tiny());
        let t = g.trace();
        let it = &t.iters[0];
        let fv: Vec<u64> = it
            .inner
            .iter()
            .filter(|r| r.site == sites::FROM_VALUES)
            .map(|r| r.vaddr)
            .collect();
        assert_eq!(fv.len(), g.cfg.degree);
        for w in fv.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn remote_loads_hit_opposite_half_headers() {
        let g = Em3d::build(Em3dConfig::tiny());
        let t = g.trace();
        for (i, it) in t.iters.iter().enumerate() {
            for r in it.inner.iter().filter(|r| r.site == sites::OTHER_VALUE) {
                let target = g.node_addr.iter().position(|&a| a == r.vaddr).unwrap();
                let half = g.cfg.nodes / 2;
                assert_ne!(i < half, target < half);
            }
        }
    }

    #[test]
    fn native_compute_is_deterministic_and_finite() {
        let mut a = Em3d::build(Em3dConfig::tiny());
        let mut b = Em3d::build(Em3dConfig::tiny());
        let ca = a.compute_native();
        let cb = b.compute_native();
        assert_eq!(ca, cb);
        assert!(ca.is_finite());
        // A second pass changes the values (the kernel is iterative).
        let ca2 = a.compute_native();
        assert_ne!(ca, ca2);
    }

    #[test]
    #[should_panic(expected = "even node count")]
    fn odd_node_count_rejected() {
        let _ = Em3d::build(Em3dConfig {
            nodes: 3,
            ..Em3dConfig::tiny()
        });
    }

    #[test]
    fn fragmented_layout_differs_from_contiguous() {
        let f = Em3d::build(Em3dConfig::tiny());
        let c = Em3d::build(Em3dConfig {
            fragmented: false,
            ..Em3dConfig::tiny()
        });
        assert_ne!(f.node_addr, c.node_addr);
    }
}
