//! Hash-join probe — the classic LDS kernel of in-memory databases.
//!
//! The build phase hashes the build-side tuples into a chained hash
//! table (bucket-head array + per-tuple chain entries on a fragmented
//! heap). The hot loop is the probe phase: a sequential scan of the
//! probe relation where every tuple hashes its key, reads the bucket
//! head, chases the entry chain until a key match or chain end, and on
//! a match dereferences the build tuple's payload. The probe-side scan
//! is perfectly strided (hardware streamers love it) while the bucket,
//! chain, and payload reads are pointer-chased — exactly the split the
//! paper's pollution analysis cares about.

use crate::arena::Arena;
use sp_trace::SmallRng;
use sp_trace::{HotLoopTrace, IterRecord, MemRef, VAddr};

/// Reference-site ids used in hash-join traces.
pub mod sites {
    use sp_trace::SiteId;
    /// Sequential probe-relation scan `probe[i].key` (backbone).
    pub const PROBE: SiteId = SiteId(0);
    /// Bucket-head read `table[h(key)]`.
    pub const BUCKET: SiteId = SiteId(1);
    /// Chain-entry read `ent->key / ent->next`.
    pub const ENTRY: SiteId = SiteId(2);
    /// Matched build-tuple payload read `ent->tuple->cols`.
    pub const PAYLOAD: SiteId = SiteId(3);
}

/// Hash-join build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashJoinConfig {
    /// Build-side tuple count (rows hashed into the table).
    pub build: usize,
    /// Probe-side tuple count (rows scanned by the hot loop).
    pub probe: usize,
    /// Bucket-head count (power of two).
    pub buckets: usize,
    /// Key universe: keys are drawn from `0..key_space`, so smaller
    /// spaces raise the match rate and lengthen the chains walked.
    pub key_space: u64,
    /// RNG seed for keys and heap layout.
    pub seed: u64,
    /// Computation cycles per probed tuple (hash + compares).
    pub compute_per_probe: u64,
}

impl HashJoinConfig {
    /// Default scaled input matched to the scaled cache config.
    pub fn scaled() -> Self {
        HashJoinConfig {
            build: 4096,
            probe: 8192,
            buckets: 1024,
            key_space: 6144,
            seed: 0x401,
            compute_per_probe: 6,
        }
    }

    /// A small input for fast tests.
    pub fn tiny() -> Self {
        HashJoinConfig {
            build: 96,
            probe: 160,
            buckets: 32,
            key_space: 144,
            ..Self::scaled()
        }
    }
}

/// A built hash-join instance: table layout plus the probe key stream.
#[derive(Debug, Clone)]
pub struct HashJoin {
    cfg: HashJoinConfig,
    /// Simulated base address of the bucket-head array (8B per head).
    bucket_base: VAddr,
    /// Simulated base address of the probe relation (16B per tuple).
    probe_base: VAddr,
    /// Simulated address of each chain entry (one per build tuple).
    entry_addr: Vec<VAddr>,
    /// Simulated address of each build tuple's payload.
    payload_addr: Vec<VAddr>,
    /// Per-bucket chains: indices of build tuples, insertion order.
    chains: Vec<Vec<u32>>,
    /// Build-side keys.
    build_key: Vec<u64>,
    /// Probe-side keys.
    probe_key: Vec<u64>,
}

impl HashJoin {
    fn bucket_of(key: u64, buckets: usize) -> usize {
        // Multiplicative hash; buckets is a power of two.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (buckets - 1)
    }

    /// Build the hash table and the probe key stream.
    pub fn build(cfg: HashJoinConfig) -> Self {
        assert!(cfg.build >= 1 && cfg.probe >= 1);
        assert!(
            cfg.buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        assert!(cfg.key_space >= 1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut arena = Arena::fragmented(0x900_0000, 128, cfg.seed ^ 0x101);
        let bucket_base = arena.alloc_array(cfg.buckets as u64, 8, 64);
        let probe_base = arena.alloc_array(cfg.probe as u64, 16, 64);
        let build_key: Vec<u64> = (0..cfg.build)
            .map(|_| rng.gen_range(0..cfg.key_space))
            .collect();
        let probe_key: Vec<u64> = (0..cfg.probe)
            .map(|_| rng.gen_range(0..cfg.key_space))
            .collect();
        let mut entry_addr = Vec::with_capacity(cfg.build);
        let mut payload_addr = Vec::with_capacity(cfg.build);
        let mut chains = vec![Vec::new(); cfg.buckets];
        for (i, &k) in build_key.iter().enumerate() {
            entry_addr.push(arena.alloc(16, 16));
            payload_addr.push(arena.alloc(32, 32));
            chains[Self::bucket_of(k, cfg.buckets)].push(i as u32);
        }
        HashJoin {
            cfg,
            bucket_base,
            probe_base,
            entry_addr,
            payload_addr,
            chains,
            build_key,
            probe_key,
        }
    }

    /// This instance's configuration.
    pub fn config(&self) -> HashJoinConfig {
        self.cfg
    }

    /// Outer-hot-loop iterations: one per probed tuple.
    pub fn hot_iterations(&self) -> usize {
        self.cfg.probe
    }

    /// Emit the probe phase's reference stream.
    pub fn trace(&self) -> HotLoopTrace {
        let mut t = HotLoopTrace::new("hashjoin::probe");
        t.site_names = vec![
            "probe[i].key".into(),
            "table[h]".into(),
            "ent->key".into(),
            "ent->tuple->cols".into(),
        ];
        t.iters = self.iter_records().collect();
        t
    }

    /// Stream the probe iterations without materializing the trace.
    pub fn iter_records(&self) -> impl Iterator<Item = IterRecord> + '_ {
        self.probe_key.iter().enumerate().map(move |(i, &key)| {
            let b = Self::bucket_of(key, self.cfg.buckets);
            let mut inner = vec![MemRef::load(self.bucket_base + b as u64 * 8, sites::BUCKET)];
            for &e in &self.chains[b] {
                inner.push(MemRef::load(self.entry_addr[e as usize], sites::ENTRY));
                if self.build_key[e as usize] == key {
                    inner.push(MemRef::load(self.payload_addr[e as usize], sites::PAYLOAD));
                    break;
                }
            }
            IterRecord {
                backbone: vec![MemRef::load(self.probe_base + i as u64 * 16, sites::PROBE)],
                inner,
                compute_cycles: self.cfg.compute_per_probe,
            }
        })
    }

    /// Stream `(outer_iteration, reference)` pairs.
    pub fn ref_iter(&self) -> impl Iterator<Item = (u32, MemRef)> + '_ {
        self.iter_records().enumerate().flat_map(|(i, it)| {
            let refs: Vec<MemRef> = it.refs().copied().collect();
            refs.into_iter().map(move |r| (i as u32, r))
        })
    }

    /// Run the join natively: `(matches, key_checksum)` over the same
    /// table — first-match semantics, mirroring the traced control flow.
    pub fn join_native(&self) -> (u64, u64) {
        let (mut matches, mut checksum) = (0u64, 0u64);
        for &key in &self.probe_key {
            let b = Self::bucket_of(key, self.cfg.buckets);
            if let Some(&e) = self.chains[b]
                .iter()
                .find(|&&e| self.build_key[e as usize] == key)
            {
                matches += 1;
                checksum = checksum
                    .wrapping_mul(31)
                    .wrapping_add(self.build_key[e as usize] + e as u64);
            }
        }
        (matches, checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = HashJoin::build(HashJoinConfig::tiny());
        let b = HashJoin::build(HashJoinConfig::tiny());
        assert_eq!(a.build_key, b.build_key);
        assert_eq!(a.probe_key, b.probe_key);
        assert_eq!(a.entry_addr, b.entry_addr);
    }

    #[test]
    fn every_probe_reads_its_tuple_and_one_bucket() {
        let j = HashJoin::build(HashJoinConfig::tiny());
        let t = j.trace();
        assert_eq!(t.outer_iters(), j.hot_iterations());
        for it in &t.iters {
            assert_eq!(it.backbone.len(), 1);
            assert_eq!(it.backbone[0].site, sites::PROBE);
            let buckets = it.inner.iter().filter(|r| r.site == sites::BUCKET).count();
            assert_eq!(buckets, 1);
        }
    }

    #[test]
    fn probe_scan_is_strided() {
        let j = HashJoin::build(HashJoinConfig::tiny());
        let t = j.trace();
        let probes: Vec<VAddr> = t
            .tagged_refs()
            .filter(|(_, r)| r.site == sites::PROBE)
            .map(|(_, r)| r.vaddr)
            .collect();
        for w in probes.windows(2) {
            assert_eq!(w[1] - w[0], 16, "probe scan must be 16B-strided");
        }
    }

    #[test]
    fn matches_carry_a_payload_read() {
        let j = HashJoin::build(HashJoinConfig::tiny());
        let (matches, _) = j.join_native();
        let t = j.trace();
        let payloads = t
            .tagged_refs()
            .filter(|(_, r)| r.site == sites::PAYLOAD)
            .count() as u64;
        assert_eq!(payloads, matches, "one payload read per first match");
        assert!(matches > 0, "tiny key space must produce matches");
    }

    #[test]
    fn join_checksum_is_stable() {
        let j = HashJoin::build(HashJoinConfig::tiny());
        assert_eq!(j.join_native(), j.join_native());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_buckets_rejected() {
        let _ = HashJoin::build(HashJoinConfig {
            buckets: 12,
            ..HashJoinConfig::tiny()
        });
    }
}
