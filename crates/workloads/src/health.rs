//! Health (Olden) — Colombian health-care simulation over a 4-ary
//! village hierarchy.
//!
//! Another member of the Olden suite the paper screened (§IV.B). Each
//! village holds linked lists of patients; every simulation step walks
//! the village tree post-order, processes each village's waiting list,
//! and transfers a fraction of patients up the hierarchy. The reference
//! pattern is a tree chase (village headers) interleaved with scattered
//! patient-record loads — heavily irregular, and memory-bound once the
//! patient pool outgrows the L2, so the selection screen accepts it.
//!
//! One outer hot-loop iteration = one village visit in one simulation
//! step (the body of Olden's `sim` loop).

use crate::arena::Arena;
use sp_trace::SmallRng;
use sp_trace::{HotLoopTrace, IterRecord, MemRef, VAddr};
use std::collections::VecDeque;

/// Reference-site ids used in Health traces.
pub mod sites {
    use sp_trace::SiteId;
    /// Village header dereference (tree chase, backbone).
    pub const VILLAGE: SiteId = SiteId(0);
    /// Patient-record load while walking the waiting list.
    pub const PATIENT: SiteId = SiteId(1);
    /// Transfer: store to the parent village's list head.
    pub const TRANSFER: SiteId = SiteId(2);
}

/// Health build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Depth of the 4-ary village tree (villages = (4^levels - 1) / 3).
    pub levels: u32,
    /// Simulation steps.
    pub steps: usize,
    /// New patients arriving per leaf village per step.
    pub arrivals_per_leaf: usize,
    /// One-in-N chance a processed patient transfers to the parent.
    pub transfer_one_in: usize,
    /// RNG seed (layout and patient routing).
    pub seed: u64,
    /// Computation cycles per processed patient.
    pub compute_per_patient: u64,
}

impl HealthConfig {
    /// Default scaled input: 341 villages, 60 steps.
    pub fn scaled() -> Self {
        HealthConfig {
            levels: 5,
            steps: 60,
            arrivals_per_leaf: 2,
            transfer_one_in: 4,
            seed: 0x4EA1,
            compute_per_patient: 3,
        }
    }

    /// A small input for fast tests.
    pub fn tiny() -> Self {
        HealthConfig {
            levels: 3,
            steps: 8,
            ..Self::scaled()
        }
    }

    /// Villages in the tree.
    pub fn villages(&self) -> usize {
        ((4usize.pow(self.levels)) - 1) / 3
    }
}

/// A built Health instance.
#[derive(Debug, Clone)]
pub struct Health {
    cfg: HealthConfig,
    /// Simulated address of each village header (level order).
    village_addr: Vec<VAddr>,
    /// Parent index per village (root points to itself).
    parent: Vec<u32>,
    /// Base address of the global patient pool.
    patient_base: VAddr,
}

/// Size of one simulated patient record, bytes.
const PATIENT_BYTES: u64 = 64;

impl Health {
    /// Build the village hierarchy.
    pub fn build(cfg: HealthConfig) -> Self {
        assert!((1..=9).contains(&cfg.levels), "levels must be in [1, 9]");
        assert!(cfg.transfer_one_in >= 1);
        let n = cfg.villages();
        let mut arena = Arena::fragmented(0x2000_0000, 128, cfg.seed);
        let village_addr: Vec<VAddr> = (0..n).map(|_| arena.alloc(64, 64)).collect();
        // Level-order 4-ary: children of i are 4i+1..4i+4.
        let parent = (0..n as u32)
            .map(|i| if i == 0 { 0 } else { (i - 1) / 4 })
            .collect();
        let patient_base = arena.alloc_array(
            (cfg.steps * cfg.arrivals_per_leaf * n + 1) as u64,
            PATIENT_BYTES,
            64,
        );
        Health {
            cfg,
            village_addr,
            parent,
            patient_base,
        }
    }

    /// This instance's configuration.
    pub fn config(&self) -> HealthConfig {
        self.cfg
    }

    /// Villages in the hierarchy.
    pub fn villages(&self) -> usize {
        self.village_addr.len()
    }

    /// `true` if village `v` is a leaf.
    pub fn is_leaf(&self, v: usize) -> bool {
        4 * v + 1 >= self.villages()
    }

    /// Outer-hot-loop iterations: villages x steps.
    pub fn hot_iterations(&self) -> usize {
        self.villages() * self.cfg.steps
    }

    /// Run the simulation, emitting the hot loop's reference stream and
    /// returning `(trace, total_patients_processed)`.
    pub fn simulate(&self) -> (HotLoopTrace, u64) {
        let cfg = self.cfg;
        let n = self.villages();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x51);
        let mut waiting: Vec<VecDeque<u64>> = vec![VecDeque::new(); n];
        let mut next_patient = 0u64;
        let mut processed = 0u64;
        let mut t = HotLoopTrace::new("health::sim");
        t.site_names = vec![
            "village->next".into(),
            "patient->hosts".into(),
            "parent list (store)".into(),
        ];
        for _ in 0..cfg.steps {
            // New arrivals at the leaves.
            for (v, queue) in waiting.iter_mut().enumerate() {
                if 4 * v + 1 >= n {
                    for _ in 0..cfg.arrivals_per_leaf {
                        queue.push_back(next_patient);
                        next_patient += 1;
                    }
                }
            }
            // Post-order visit = reverse level order for a complete tree.
            for v in (0..n).rev() {
                let mut inner = Vec::new();
                let count = waiting[v].len();
                let mut transfers = Vec::new();
                for _ in 0..count {
                    let p = waiting[v].pop_front().expect("counted");
                    inner.push(MemRef::load(
                        self.patient_base + p * PATIENT_BYTES,
                        sites::PATIENT,
                    ));
                    processed += 1;
                    if v != 0 && rng.gen_range(0..cfg.transfer_one_in) == 0 {
                        // Escalate to the parent village.
                        inner.push(MemRef::store(
                            self.village_addr[self.parent[v] as usize] + 8,
                            sites::TRANSFER,
                        ));
                        transfers.push(p);
                    }
                }
                for p in transfers {
                    waiting[self.parent[v] as usize].push_back(p);
                }
                t.iters.push(IterRecord {
                    backbone: vec![MemRef::load(self.village_addr[v], sites::VILLAGE)],
                    inner,
                    compute_cycles: cfg.compute_per_patient * count as u64,
                });
            }
        }
        (t, processed)
    }

    /// The hot-loop trace (the paper-facing interface).
    pub fn trace(&self) -> HotLoopTrace {
        self.simulate().0
    }

    /// Total patients processed across the simulation (checksum).
    pub fn processed_native(&self) -> u64 {
        self.simulate().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn village_count_matches_levels() {
        assert_eq!(
            HealthConfig {
                levels: 1,
                ..HealthConfig::tiny()
            }
            .villages(),
            1
        );
        assert_eq!(
            HealthConfig {
                levels: 3,
                ..HealthConfig::tiny()
            }
            .villages(),
            21
        );
        assert_eq!(HealthConfig::scaled().villages(), 341);
    }

    #[test]
    fn trace_has_one_iteration_per_village_visit() {
        let h = Health::build(HealthConfig::tiny());
        let t = h.trace();
        assert_eq!(t.outer_iters(), h.hot_iterations());
        for it in &t.iters {
            assert_eq!(it.backbone.len(), 1, "one village-header chase per visit");
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = Health::build(HealthConfig::tiny());
        let b = Health::build(HealthConfig::tiny());
        let (ta, pa) = a.simulate();
        let (tb, pb) = b.simulate();
        assert_eq!(pa, pb);
        assert_eq!(ta.iters, tb.iters);
        assert!(pa > 0);
    }

    #[test]
    fn patients_flow_toward_the_root() {
        let h = Health::build(HealthConfig::tiny());
        let (t, _) = h.simulate();
        // The root (village 0) is visited last each step; by the end of
        // the run it must have processed transferred patients, i.e. some
        // root iterations have patient loads.
        let n = h.villages();
        let mut saw_root_patient = false;
        for (i, it) in t.iters.iter().enumerate() {
            let village_visited = n - 1 - (i % n); // reverse level order
            if village_visited == 0 && it.inner.iter().any(|r| r.site == sites::PATIENT) {
                saw_root_patient = true;
            }
        }
        assert!(saw_root_patient, "patients must reach the root");
    }

    #[test]
    fn patient_loads_stay_in_the_pool() {
        let h = Health::build(HealthConfig::tiny());
        let t = h.trace();
        let lo = h.patient_base;
        for (_, r) in t.tagged_refs().filter(|(_, r)| r.site == sites::PATIENT) {
            assert!(r.vaddr >= lo, "patient load below the pool");
        }
    }

    #[test]
    fn conserved_patients_processed_at_least_arrivals() {
        let h = Health::build(HealthConfig::tiny());
        let (_, processed) = h.simulate();
        let leaves = (0..h.villages()).filter(|&v| h.is_leaf(v)).count();
        let arrivals = (leaves * h.cfg.arrivals_per_leaf * h.cfg.steps) as u64;
        // Every arrival is processed at least once (the step it arrives).
        assert!(processed >= arrivals, "{processed} < {arrivals}");
    }

    #[test]
    #[should_panic(expected = "levels must be")]
    fn zero_levels_rejected() {
        let _ = Health::build(HealthConfig {
            levels: 0,
            ..HealthConfig::tiny()
        });
    }
}
