//! # sp-workloads
//!
//! The paper's three memory-intensive benchmarks, implemented from
//! scratch: **EM3D** and **MST** from the Olden suite and the **MCF**
//! pricing kernel from SPEC CPU2006 (see `DESIGN.md` §2 for the
//! substitution argument). Each workload can
//!
//! * build its data structures over a simulated heap ([`arena::Arena`])
//!   and emit the reference stream of its hot loop as a
//!   [`sp_trace::HotLoopTrace`], and
//! * run the same kernel natively (real arrays, real arithmetic) for the
//!   `sp-native` hardware-prefetch path.
//!
//! [`Workload`] is the uniform handle the experiment harness uses;
//! [`builder::WorkloadBuilder`] is the declarative construction layer
//! behind it, which also covers the §IV.B screening candidates and the
//! LDS workload frontier (hash join, BFS, skip list, B-tree).

pub mod arena;
pub mod bfs;
pub mod btree;
pub mod builder;
pub mod em3d;
pub mod hashjoin;
pub mod health;
pub mod matmul;
pub mod mcf;
pub mod mst;
pub mod skiplist;
pub mod treeadd;

pub use arena::Arena;
pub use bfs::{Bfs, BfsConfig};
pub use btree::{BTree, BTreeConfig};
pub use builder::{BuiltKernel, KernelKind, KernelSpec, ScaleTier, WorkloadBuilder};
pub use em3d::{Em3d, Em3dConfig};
pub use hashjoin::{HashJoin, HashJoinConfig};
pub use health::{Health, HealthConfig};
pub use matmul::{Matmul, MatmulConfig};
pub use mcf::{Mcf, McfConfig};
pub use mst::{Mst, MstConfig};
pub use skiplist::{SkipList, SkipListConfig};
pub use treeadd::{TreeAdd, TreeAddConfig};

use sp_trace::HotLoopTrace;

/// Which benchmark, for harness plumbing and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Olden EM3D (`compute_nodes`).
    Em3d,
    /// SPEC CPU2006 MCF (`primal_bea_mpp`).
    Mcf,
    /// Olden MST (`BlueRule`).
    Mst,
}

impl Benchmark {
    /// All three paper benchmarks, in the paper's order.
    pub const ALL: [Benchmark; 3] = [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst];

    /// Display name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Em3d => "EM3D",
            Benchmark::Mcf => "MCF",
            Benchmark::Mst => "MST",
        }
    }
}

/// A built workload instance behind a uniform interface.
pub enum Workload {
    /// EM3D instance.
    Em3d(Em3d),
    /// MCF instance.
    Mcf(Mcf),
    /// MST instance.
    Mst(Mst),
}

impl Workload {
    /// Build a benchmark at the given scale tier via the builder layer.
    pub fn at(which: Benchmark, tier: ScaleTier) -> Workload {
        let spec = KernelSpec {
            kind: KernelKind::from_benchmark(which),
            tier,
            seed: None,
        };
        match spec.build() {
            BuiltKernel::Em3d(w) => Workload::Em3d(w),
            BuiltKernel::Mcf(w) => Workload::Mcf(w),
            BuiltKernel::Mst(w) => Workload::Mst(w),
            other => unreachable!("trio spec built {:?}", other.kind()),
        }
    }

    /// Build a benchmark at the default scaled size.
    pub fn scaled(which: Benchmark) -> Workload {
        Workload::at(which, ScaleTier::Scaled)
    }

    /// Build a benchmark at the fast test size.
    pub fn tiny(which: Benchmark) -> Workload {
        Workload::at(which, ScaleTier::Tiny)
    }

    /// Which benchmark this is.
    pub fn benchmark(&self) -> Benchmark {
        match self {
            Workload::Em3d(_) => Benchmark::Em3d,
            Workload::Mcf(_) => Benchmark::Mcf,
            Workload::Mst(_) => Benchmark::Mst,
        }
    }

    /// The hot loop's reference stream.
    pub fn trace(&self) -> HotLoopTrace {
        match self {
            Workload::Em3d(w) => w.trace(),
            Workload::Mcf(w) => w.trace(),
            Workload::Mst(w) => w.trace(),
        }
    }

    /// Outer-hot-loop iterations (paper Table 2, column 3).
    pub fn hot_iterations(&self) -> usize {
        match self {
            Workload::Em3d(w) => w.hot_iterations(),
            Workload::Mcf(w) => w.hot_iterations(),
            Workload::Mst(w) => w.hot_iterations(),
        }
    }

    /// The input description string for Table 2's second column.
    pub fn input_description(&self) -> String {
        match self {
            Workload::Em3d(w) => {
                let c = w.config();
                format!("{} nodes, arity {}", c.nodes, c.degree)
            }
            Workload::Mcf(w) => {
                let c = w.config();
                format!("{} arcs, {} nodes", c.arcs, c.nodes)
            }
            Workload::Mst(w) => format!("{} nodes", w.config().nodes),
        }
    }
}

/// A benchmark-selection candidate (paper §IV.B: the authors screened
/// the full SPEC2006 + Olden suites and kept the L2-miss-dominated
/// applications). This wider enum covers the paper's three selections
/// plus representatives of the screened-out space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Candidate {
    /// Olden EM3D (selected by the paper).
    Em3d,
    /// SPEC2006 MCF (selected by the paper).
    Mcf,
    /// Olden MST (selected by the paper).
    Mst,
    /// Olden TreeAdd (screened; memory-bound once the tree outgrows L2).
    TreeAdd,
    /// Olden Health (screened; irregular patient-list walks).
    Health,
    /// Blocked dense matmul (screened; compute-bound, gets rejected).
    Matmul,
}

impl Candidate {
    /// Every candidate, selections first.
    pub const ALL: [Candidate; 6] = [
        Candidate::Em3d,
        Candidate::Mcf,
        Candidate::Mst,
        Candidate::TreeAdd,
        Candidate::Health,
        Candidate::Matmul,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Candidate::Em3d => "EM3D",
            Candidate::Mcf => "MCF",
            Candidate::Mst => "MST",
            Candidate::TreeAdd => "TreeAdd",
            Candidate::Health => "Health",
            Candidate::Matmul => "MatMul",
        }
    }

    /// `true` for the three benchmarks the paper selected.
    pub fn selected_by_paper(self) -> bool {
        matches!(self, Candidate::Em3d | Candidate::Mcf | Candidate::Mst)
    }

    /// The kernel this candidate maps to in the builder layer.
    pub fn kind(self) -> KernelKind {
        KernelKind::from_candidate(self)
    }

    /// The hot-loop trace at the given scale tier.
    pub fn trace_at(self, tier: ScaleTier) -> HotLoopTrace {
        KernelSpec {
            kind: self.kind(),
            tier,
            seed: None,
        }
        .trace()
    }

    /// The hot-loop trace at the default scaled size.
    pub fn trace_scaled(self) -> HotLoopTrace {
        self.trace_at(ScaleTier::Scaled)
    }

    /// The hot-loop trace at the fast test size.
    pub fn trace_tiny(self) -> HotLoopTrace {
        self.trace_at(ScaleTier::Tiny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_candidates_trace_at_tiny_size() {
        for c in Candidate::ALL {
            let t = c.trace_tiny();
            assert!(t.total_refs() > 0, "{}", c.name());
        }
        assert!(Candidate::Em3d.selected_by_paper());
        assert!(!Candidate::Matmul.selected_by_paper());
    }

    #[test]
    fn all_benchmarks_build_and_trace_at_tiny_size() {
        for b in Benchmark::ALL {
            let w = Workload::tiny(b);
            assert_eq!(w.benchmark(), b);
            let t = w.trace();
            assert_eq!(t.outer_iters(), w.hot_iterations());
            assert!(t.total_refs() > 0);
            assert!(!w.input_description().is_empty());
        }
    }

    #[test]
    fn benchmark_names_match_paper() {
        assert_eq!(Benchmark::Em3d.name(), "EM3D");
        assert_eq!(Benchmark::Mcf.name(), "MCF");
        assert_eq!(Benchmark::Mst.name(), "MST");
    }
}
