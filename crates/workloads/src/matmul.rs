//! Blocked dense matrix multiply — the compute-bound *reject* of the
//! benchmark-selection experiment.
//!
//! The paper screens the entire SPEC2006 + Olden suites and keeps only
//! applications with "significant number of cycles attributed to the L2
//! cache misses" (§IV.B). A well-blocked matmul is the canonical
//! counter-example: its working set per block fits in the L1/L2 and its
//! arithmetic density is high, so its L2-miss cycle share is tiny and the
//! selection must reject it (and its CALR is high, so the RP rule would
//! degenerate to conventional prefetching anyway).

use sp_trace::{HotLoopTrace, IterRecord, MemRef, VAddr};

/// Reference-site ids used in matmul traces.
pub mod sites {
    use sp_trace::SiteId;
    /// `a[i][k]` loads.
    pub const A: SiteId = SiteId(0);
    /// `b[k][j]` loads.
    pub const B: SiteId = SiteId(1);
    /// `c[i][j]` update.
    pub const C: SiteId = SiteId(2);
}

/// Matmul parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulConfig {
    /// Matrix dimension (`n x n`, f64 elements).
    pub n: usize,
    /// Block (tile) edge length.
    pub block: usize,
    /// Computation cycles per multiply-add.
    pub compute_per_fma: u64,
}

impl MatmulConfig {
    /// Default scaled input: 96x96 with 16x16 tiles — each tile triple
    /// (3 * 2KB) sits comfortably in the scaled 4KB L1 + 256KB L2.
    pub fn scaled() -> Self {
        MatmulConfig {
            n: 96,
            block: 16,
            compute_per_fma: 4,
        }
    }

    /// A small input for fast tests.
    pub fn tiny() -> Self {
        MatmulConfig {
            n: 16,
            block: 8,
            ..Self::scaled()
        }
    }
}

/// A built matmul instance (addresses only; the kernel itself is not the
/// point — its reference stream is).
#[derive(Debug, Clone)]
pub struct Matmul {
    cfg: MatmulConfig,
    a_base: VAddr,
    b_base: VAddr,
    c_base: VAddr,
}

impl Matmul {
    /// Lay out the three matrices contiguously.
    pub fn build(cfg: MatmulConfig) -> Self {
        assert!(cfg.n > 0 && cfg.block > 0 && cfg.block <= cfg.n);
        assert_eq!(cfg.n % cfg.block, 0, "block must divide n");
        let bytes = (cfg.n * cfg.n * 8) as u64;
        Matmul {
            cfg,
            a_base: 0x1000_0000,
            b_base: 0x1000_0000 + bytes,
            c_base: 0x1000_0000 + 2 * bytes,
        }
    }

    /// This instance's configuration.
    pub fn config(&self) -> MatmulConfig {
        self.cfg
    }

    /// Outer-hot-loop iterations: one per `(i, j, k)` tile triple.
    pub fn hot_iterations(&self) -> usize {
        let t = self.cfg.n / self.cfg.block;
        t * t * t
    }

    fn elem(&self, base: VAddr, r: usize, c: usize) -> VAddr {
        base + ((r * self.cfg.n + c) * 8) as u64
    }

    /// Emit the reference stream of one blocked multiply. One outer
    /// iteration = one tile triple; within it, one representative row
    /// sweep per tile row (full element enumeration would be enormous and
    /// adds nothing: reuse within a tile is the point).
    pub fn trace(&self) -> HotLoopTrace {
        let mut t = HotLoopTrace::new("matmul::blocked");
        t.site_names = vec!["a[i][k]".into(), "b[k][j]".into(), "c[i][j]".into()];
        let (n, bl) = (self.cfg.n, self.cfg.block);
        let tiles = n / bl;
        for ti in 0..tiles {
            for tj in 0..tiles {
                for tk in 0..tiles {
                    let mut inner = Vec::with_capacity(3 * bl * bl / 8 * 3);
                    for r in 0..bl {
                        // Touch each cache line of the three tiles' rows.
                        for col in (0..bl).step_by(8) {
                            inner.push(MemRef::load(
                                self.elem(self.a_base, ti * bl + r, tk * bl + col),
                                sites::A,
                            ));
                            inner.push(MemRef::load(
                                self.elem(self.b_base, tk * bl + r, tj * bl + col),
                                sites::B,
                            ));
                            inner.push(MemRef::store(
                                self.elem(self.c_base, ti * bl + r, tj * bl + col),
                                sites::C,
                            ));
                        }
                    }
                    t.iters.push(IterRecord {
                        backbone: Vec::new(),
                        inner,
                        // bl^3 fused multiply-adds per tile triple.
                        compute_cycles: self.cfg.compute_per_fma * (bl * bl * bl) as u64,
                    });
                }
            }
        }
        t
    }

    /// Native blocked multiply over freshly initialized matrices; returns
    /// a checksum of `C`.
    pub fn multiply_native(&self) -> f64 {
        let n = self.cfg.n;
        let bl = self.cfg.block;
        let a: Vec<f64> = (0..n * n).map(|i| ((i % 97) as f64) / 97.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 89) as f64) / 89.0).collect();
        let mut c = vec![0.0f64; n * n];
        for ti in (0..n).step_by(bl) {
            for tj in (0..n).step_by(bl) {
                for tk in (0..n).step_by(bl) {
                    for i in ti..ti + bl {
                        for k in tk..tk + bl {
                            let aik = a[i * n + k];
                            for j in tj..tj + bl {
                                c[i * n + j] += aik * b[k * n + j];
                            }
                        }
                    }
                }
            }
        }
        c.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_count_matches() {
        let m = Matmul::build(MatmulConfig::tiny());
        assert_eq!(m.hot_iterations(), 8); // (16/8)^3
        assert_eq!(m.trace().outer_iters(), 8);
    }

    #[test]
    fn compute_dominates_references() {
        let m = Matmul::build(MatmulConfig::tiny());
        let t = m.trace();
        let s = t.stats(64);
        // CALR proxy: compute cycles per reference is large.
        assert!(s.compute_cycles as f64 / s.total_refs as f64 > 10.0);
    }

    #[test]
    fn footprint_is_three_matrices() {
        let m = Matmul::build(MatmulConfig::tiny());
        let s = m.trace().stats(64);
        let expect = 3 * 16 * 16 * 8 / 64; // bytes / line
        assert_eq!(s.unique_blocks, expect);
    }

    #[test]
    fn native_multiply_matches_reference() {
        let cfg = MatmulConfig::tiny();
        let m = Matmul::build(cfg);
        let blocked = m.multiply_native();
        // Naive reference.
        let n = cfg.n;
        let a: Vec<f64> = (0..n * n).map(|i| ((i % 97) as f64) / 97.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 89) as f64) / 89.0).collect();
        let mut c = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    c[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        let naive: f64 = c.iter().sum();
        assert!((blocked - naive).abs() < 1e-6 * naive.abs());
    }

    #[test]
    #[should_panic(expected = "block must divide")]
    fn indivisible_block_rejected() {
        let _ = Matmul::build(MatmulConfig {
            n: 10,
            block: 3,
            compute_per_fma: 1,
        });
    }
}
