//! MCF (SPEC CPU2006 429.mcf) — network-simplex pricing kernel.
//!
//! The cycle-dominant hot loop of MCF is `primal_bea_mpp`: a linear scan
//! over the arc array that, per arc, reads the arc record and dereferences
//! the `tail` and `head` node structures to compute the reduced cost
//! `red_cost = cost - tail->potential + head->potential`. The arc scan is
//! sequential (streamer-friendly) but the node dereferences are irregular.
//!
//! Per outer iteration (one arc examined) only ~half a new block enters
//! any cache set, so MCF's Set Affinity is large (paper Table 2:
//! [3000, 46000]) and its tolerated prefetch distance correspondingly
//! long (paper §V.A: < 1500).

use crate::arena::Arena;
use sp_trace::SmallRng;
use sp_trace::{HotLoopTrace, IterRecord, MemRef, VAddr};

/// Reference-site ids used in MCF traces.
pub mod sites {
    use sp_trace::SiteId;
    /// `arc = &arcs[i]` record read (sequential scan).
    pub const ARC: SiteId = SiteId(0);
    /// `arc->tail->potential`.
    pub const TAIL_POT: SiteId = SiteId(1);
    /// `arc->head->potential`.
    pub const HEAD_POT: SiteId = SiteId(2);
    /// Basket insert (write to the candidate-list entry).
    pub const BASKET: SiteId = SiteId(3);
}

/// MCF build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McfConfig {
    /// Number of arcs scanned by one pricing pass.
    pub arcs: usize,
    /// Number of network nodes.
    pub nodes: usize,
    /// RNG seed for the network wiring.
    pub seed: u64,
    /// Computation cycles per arc (the reduced-cost arithmetic).
    pub compute_per_arc: u64,
    /// Fraction of arcs entering the basket, as 1-in-N (Olden-style
    /// deterministic substitute for the pricing test).
    pub basket_one_in: usize,
}

impl McfConfig {
    /// Default scaled input matched to the scaled cache config.
    pub fn scaled() -> Self {
        McfConfig {
            arcs: 40_000,
            nodes: 2_560,
            seed: 0x4CF,
            compute_per_arc: 6,
            basket_one_in: 16,
        }
    }

    /// A rough stand-in for the `ref` input's pricing-pass size (the real
    /// input has ~2.4M arcs; this keeps the same arcs:nodes ratio).
    pub fn paper() -> Self {
        McfConfig {
            arcs: 2_400_000,
            nodes: 150_000,
            ..Self::scaled()
        }
    }

    /// A small input for fast tests.
    pub fn tiny() -> Self {
        McfConfig {
            arcs: 512,
            nodes: 64,
            ..Self::scaled()
        }
    }
}

/// A built MCF pricing problem.
#[derive(Debug, Clone)]
pub struct Mcf {
    cfg: McfConfig,
    /// Base simulated address of the arc array (32-byte records).
    arc_base: VAddr,
    /// Simulated address of each node structure (64-byte records).
    node_addr: Vec<VAddr>,
    /// Per-arc endpoints `(tail, head)`.
    pub endpoints: Vec<(u32, u32)>,
    /// Base simulated address of the basket (candidate list).
    basket_base: VAddr,
    /// Native per-node potentials.
    pub potential: Vec<i64>,
    /// Native per-arc costs.
    pub cost: Vec<i64>,
}

/// Size of one simulated arc record, bytes (cost, endpoints, ident —
/// mcf's `arc` struct packs to two per 64-byte line).
pub const ARC_BYTES: u64 = 32;

impl Mcf {
    /// Build the network.
    pub fn build(cfg: McfConfig) -> Self {
        assert!(cfg.nodes >= 2 && cfg.arcs >= 1);
        assert!(cfg.basket_one_in >= 1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut arena = Arena::new(0x100_0000);
        let arc_base = arena.alloc_array(cfg.arcs as u64, ARC_BYTES, 64);
        let node_addr: Vec<VAddr> = (0..cfg.nodes).map(|_| arena.alloc(64, 64)).collect();
        let basket_base = arena.alloc_array(cfg.arcs as u64 / 8 + 1, 16, 64);
        let endpoints = (0..cfg.arcs)
            .map(|_| {
                let t = rng.gen_range(0..cfg.nodes as u32);
                let mut h = rng.gen_range(0..cfg.nodes as u32);
                if h == t {
                    h = (h + 1) % cfg.nodes as u32;
                }
                (t, h)
            })
            .collect();
        let potential = (0..cfg.nodes)
            .map(|i| (i as i64 * 37) % 1000 - 500)
            .collect();
        let cost = (0..cfg.arcs)
            .map(|i| (i as i64 * 13) % 2000 - 1000)
            .collect();
        Mcf {
            cfg,
            arc_base,
            node_addr,
            endpoints,
            basket_base,
            potential,
            cost,
        }
    }

    /// This problem's configuration.
    pub fn config(&self) -> McfConfig {
        self.cfg
    }

    /// Outer-hot-loop iterations of one pricing pass (= arcs scanned).
    pub fn hot_iterations(&self) -> usize {
        self.cfg.arcs
    }

    /// Emit the reference stream of one `primal_bea_mpp` pricing pass.
    ///
    /// The outer "backbone" is empty: the scan advances by array index,
    /// so a skipping helper thread pays nothing for skipped arcs (unlike
    /// EM3D's pointer chase).
    pub fn trace(&self) -> HotLoopTrace {
        let mut t = HotLoopTrace::new("mcf::primal_bea_mpp");
        t.site_names = vec![
            "arcs[i]".into(),
            "arc->tail->potential".into(),
            "arc->head->potential".into(),
            "basket insert".into(),
        ];
        t.iters = self.iter_records().collect();
        t
    }

    /// Stream the pricing pass's iterations without materializing the
    /// whole trace (paper-scale MCF has millions of arcs).
    pub fn iter_records(&self) -> impl Iterator<Item = IterRecord> + '_ {
        (0..self.cfg.arcs).map(move |i| {
            let (tail, head) = self.endpoints[i];
            let mut inner = vec![
                MemRef::load(self.arc_base + i as u64 * ARC_BYTES, sites::ARC),
                MemRef::load(self.node_addr[tail as usize], sites::TAIL_POT),
                MemRef::load(self.node_addr[head as usize], sites::HEAD_POT),
            ];
            if i % self.cfg.basket_one_in == 0 {
                // Basket slot index: one entry per `basket_one_in` arcs.
                let basket_len = (i / self.cfg.basket_one_in) as u64;
                inner.push(MemRef::store(
                    self.basket_base + basket_len * 16,
                    sites::BASKET,
                ));
            }
            IterRecord {
                backbone: Vec::new(),
                inner,
                compute_cycles: self.cfg.compute_per_arc,
            }
        })
    }

    /// Stream `(outer_iteration, reference)` pairs.
    pub fn ref_iter(&self) -> impl Iterator<Item = (u32, MemRef)> + '_ {
        self.iter_records().enumerate().flat_map(|(i, it)| {
            let refs: Vec<MemRef> = it.refs().copied().collect();
            refs.into_iter().map(move |r| (i as u32, r))
        })
    }

    /// Run one native pricing pass; returns the number of basket entries
    /// and a cost checksum.
    pub fn price_native(&self) -> (usize, i64) {
        let mut basket = 0usize;
        let mut check = 0i64;
        for i in 0..self.cfg.arcs {
            let (tail, head) = self.endpoints[i];
            let red_cost =
                self.cost[i] - self.potential[tail as usize] + self.potential[head as usize];
            if red_cost < 0 || i % self.cfg.basket_one_in == 0 {
                basket += 1;
                check = check.wrapping_add(red_cost);
            }
        }
        (basket, check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = Mcf::build(McfConfig::tiny());
        let b = Mcf::build(McfConfig::tiny());
        assert_eq!(a.endpoints, b.endpoints);
    }

    #[test]
    fn no_self_loops() {
        let m = Mcf::build(McfConfig::tiny());
        assert!(m.endpoints.iter().all(|&(t, h)| t != h));
    }

    #[test]
    fn arc_scan_is_sequential() {
        let m = Mcf::build(McfConfig::tiny());
        let t = m.trace();
        let arcs: Vec<u64> = t
            .tagged_refs()
            .filter(|(_, r)| r.site == sites::ARC)
            .map(|(_, r)| r.vaddr)
            .collect();
        assert_eq!(arcs.len(), m.hot_iterations());
        for w in arcs.windows(2) {
            assert_eq!(w[1] - w[0], ARC_BYTES);
        }
    }

    #[test]
    fn backbone_is_empty_index_based_scan() {
        let m = Mcf::build(McfConfig::tiny());
        let t = m.trace();
        assert!(t.iters.iter().all(|it| it.backbone.is_empty()));
    }

    #[test]
    fn node_loads_point_at_node_records() {
        let m = Mcf::build(McfConfig::tiny());
        let t = m.trace();
        for (i, it) in t.iters.iter().enumerate() {
            let (tail, head) = m.endpoints[i];
            assert_eq!(it.inner[1].vaddr, m.node_addr[tail as usize]);
            assert_eq!(it.inner[2].vaddr, m.node_addr[head as usize]);
        }
    }

    #[test]
    fn basket_stores_are_periodic() {
        let m = Mcf::build(McfConfig::tiny());
        let t = m.trace();
        let n_stores = t
            .tagged_refs()
            .filter(|(_, r)| r.site == sites::BASKET)
            .count();
        assert_eq!(n_stores, m.cfg.arcs.div_ceil(m.cfg.basket_one_in));
    }

    #[test]
    fn native_pricing_is_deterministic() {
        let m = Mcf::build(McfConfig::tiny());
        assert_eq!(m.price_native(), m.price_native());
        assert!(m.price_native().0 > 0);
    }
}
