//! MST (Olden) — Bentley's minimum-spanning-tree with per-vertex hash
//! tables.
//!
//! Olden's MST stores the edge weight between every vertex pair in a
//! per-vertex open-hash table. The hot function `BlueRule` walks the
//! remaining-vertex list (pointer chase) and, for each vertex, performs a
//! hash lookup of the just-inserted vertex: a bucket-array read followed
//! by a chain-entry read. The per-iteration *new*-block rate is low
//! (headers and buckets are revisited across BlueRule calls), so MST's
//! Set Affinity is large (paper Table 2: [6300, 10000]) and its tolerated
//! prefetch distance long (paper §V.A: < 3150).
//!
//! The trace covers the full MST construction: `nodes - 1` BlueRule
//! calls over a shrinking vertex list; each outer hot-loop iteration is
//! one vertex visited inside one BlueRule call.

use crate::arena::Arena;
use sp_trace::SmallRng;
use sp_trace::{HotLoopTrace, IterRecord, MemRef, VAddr};

/// Reference-site ids used in MST traces.
pub mod sites {
    use sp_trace::SiteId;
    /// `tmp = tmp->next` vertex-list chase (backbone).
    pub const VLIST: SiteId = SiteId(0);
    /// Bucket-array read `v->hash->array[h(key)]`.
    pub const BUCKET: SiteId = SiteId(1);
    /// Chain-entry read `ent->key` / `ent->entry`.
    pub const ENTRY: SiteId = SiteId(2);
    /// Second chain hop (collision).
    pub const ENTRY2: SiteId = SiteId(3);
}

/// MST build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MstConfig {
    /// Vertex count.
    pub nodes: usize,
    /// Buckets per per-vertex hash table.
    pub buckets: usize,
    /// RNG seed for layout and hash permutation.
    pub seed: u64,
    /// Computation cycles per visited vertex (distance compare).
    pub compute_per_visit: u64,
    /// Allocate the native weight matrix. Disabled for paper-scale
    /// layout-only builds (10^4 nodes -> a 400MB matrix).
    pub native: bool,
}

impl MstConfig {
    /// Default scaled input matched to the scaled cache config.
    pub fn scaled() -> Self {
        MstConfig {
            nodes: 768,
            buckets: 32,
            seed: 0x357,
            compute_per_visit: 4,
            native: true,
        }
    }

    /// The paper's input (Table 2): 10^4 nodes. The full trace is
    /// O(nodes^2) references — only for explicitly requested paper-scale
    /// runs.
    pub fn paper() -> Self {
        MstConfig {
            nodes: 10_000,
            native: false,
            ..Self::scaled()
        }
    }

    /// A small input for fast tests.
    pub fn tiny() -> Self {
        MstConfig {
            nodes: 48,
            buckets: 8,
            ..Self::scaled()
        }
    }
}

/// A built MST problem instance.
#[derive(Debug, Clone)]
pub struct Mst {
    cfg: MstConfig,
    /// Simulated address of each vertex header.
    vertex_addr: Vec<VAddr>,
    /// Simulated base address of each vertex's bucket array.
    bucket_addr: Vec<VAddr>,
    /// Simulated base address of each vertex's entry pool (one 16-byte
    /// entry per potential neighbour).
    entry_addr: Vec<VAddr>,
    /// Hash permutation: `hash_of[u]` is vertex `u`'s bucket index.
    hash_of: Vec<u32>,
    /// Native edge weights, `weight[u][v]` flattened (symmetric).
    pub weight: Vec<u32>,
}

impl Mst {
    /// Build the instance (Olden's `MakeGraph` + `AddEdges`).
    pub fn build(cfg: MstConfig) -> Self {
        assert!(cfg.nodes >= 2);
        assert!(
            cfg.buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut arena = Arena::fragmented(0x800_0000, 128, cfg.seed ^ 0xA11);
        let n = cfg.nodes;
        let mut vertex_addr = Vec::with_capacity(n);
        let mut bucket_addr = Vec::with_capacity(n);
        let mut entry_addr = Vec::with_capacity(n);
        for _ in 0..n {
            vertex_addr.push(arena.alloc(64, 64));
            bucket_addr.push(arena.alloc_array(cfg.buckets as u64, 8, 64));
            entry_addr.push(arena.alloc_array(n as u64, 16, 64));
        }
        let hash_of = (0..n)
            .map(|_| rng.gen_range(0..cfg.buckets as u32))
            .collect();
        let weight = if !cfg.native {
            Vec::new()
        } else {
            (0..n * n)
                .map(|i| {
                    let (u, v) = (i / n, i % n);
                    if u == v {
                        u32::MAX
                    } else {
                        // Symmetric pseudo-random weights.
                        let (a, b) = (u.min(v) as u64, u.max(v) as u64);
                        ((a * 31 + b * 17) % 65_521 + 1) as u32
                    }
                })
                .collect()
        };
        Mst {
            cfg,
            vertex_addr,
            bucket_addr,
            entry_addr,
            hash_of,
            weight,
        }
    }

    /// This instance's configuration.
    pub fn config(&self) -> MstConfig {
        self.cfg
    }

    /// Total outer-hot-loop iterations across the whole construction:
    /// BlueRule call `k` (k = 1..nodes) scans `nodes - k` vertices.
    pub fn hot_iterations(&self) -> usize {
        let n = self.cfg.nodes;
        n * (n - 1) / 2
    }

    /// Emit the reference stream of the full MST construction.
    ///
    /// Deterministic simplification of Olden's control flow: vertices are
    /// inserted in index order (the access *pattern* — list chase + hash
    /// probe per visit — is what matters for cache behaviour, and it is
    /// identical regardless of insertion order).
    pub fn trace(&self) -> HotLoopTrace {
        let mut t = HotLoopTrace::new("mst::BlueRule");
        t.site_names = vec![
            "tmp->next".into(),
            "hash->array[j]".into(),
            "ent->key".into(),
            "ent->next->key".into(),
        ];
        t.iters = self.iter_records().collect();
        t
    }

    /// Stream the construction's iterations without materializing the
    /// O(nodes^2) trace (paper-scale MST has ~5x10^7 iterations).
    pub fn iter_records(&self) -> impl Iterator<Item = IterRecord> + '_ {
        let n = self.cfg.nodes;
        (0..n - 1).flat_map(move |inserted| {
            (inserted + 1..n).map(move |v| {
                let bucket = self.hash_of[inserted] as u64;
                let mut inner = vec![
                    MemRef::load(self.bucket_addr[v] + bucket * 8, sites::BUCKET),
                    MemRef::load(self.entry_addr[v] + inserted as u64 * 16, sites::ENTRY),
                ];
                // Model a chain collision: a second hop whenever the
                // inserted vertex shares its bucket with its predecessor.
                if inserted > 0 && self.hash_of[inserted - 1] == self.hash_of[inserted] {
                    inner.push(MemRef::load(
                        self.entry_addr[v] + (inserted as u64 - 1) * 16,
                        sites::ENTRY2,
                    ));
                }
                IterRecord {
                    backbone: vec![MemRef::load(self.vertex_addr[v], sites::VLIST)],
                    inner,
                    compute_cycles: self.cfg.compute_per_visit,
                }
            })
        })
    }

    /// Stream `(outer_iteration, reference)` pairs.
    pub fn ref_iter(&self) -> impl Iterator<Item = (u32, MemRef)> + '_ {
        self.iter_records().enumerate().flat_map(|(i, it)| {
            let refs: Vec<MemRef> = it.refs().copied().collect();
            refs.into_iter().map(move |r| (i as u32, r))
        })
    }

    /// Compute the MST weight natively (Prim's algorithm over the same
    /// weights); returns the total tree weight.
    pub fn mst_weight_native(&self) -> u64 {
        assert!(
            self.cfg.native,
            "built without the native weight matrix (layout-only)"
        );
        let n = self.cfg.nodes;
        let mut in_tree = vec![false; n];
        let mut best = vec![u32::MAX; n];
        in_tree[0] = true;
        best[1..n].copy_from_slice(&self.weight[1..n]); // row 0 of `weight`
        let mut total = 0u64;
        for _ in 1..n {
            let u = (0..n)
                .filter(|&v| !in_tree[v])
                .min_by_key(|&v| best[v])
                .expect("graph is complete");
            total += best[u] as u64;
            in_tree[u] = true;
            for v in 0..n {
                if !in_tree[v] {
                    best[v] = best[v].min(self.weight[u * n + v]);
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = Mst::build(MstConfig::tiny());
        let b = Mst::build(MstConfig::tiny());
        assert_eq!(a.hash_of, b.hash_of);
        assert_eq!(a.vertex_addr, b.vertex_addr);
    }

    #[test]
    fn weights_are_symmetric_with_infinite_diagonal() {
        let m = Mst::build(MstConfig::tiny());
        let n = m.cfg.nodes;
        for u in 0..n {
            assert_eq!(m.weight[u * n + u], u32::MAX);
            for v in 0..n {
                assert_eq!(m.weight[u * n + v], m.weight[v * n + u]);
            }
        }
    }

    #[test]
    fn trace_has_triangular_iteration_count() {
        let m = Mst::build(MstConfig::tiny());
        let t = m.trace();
        assert_eq!(t.outer_iters(), m.hot_iterations());
    }

    #[test]
    fn every_iteration_probes_one_hash_table() {
        let m = Mst::build(MstConfig::tiny());
        let t = m.trace();
        for it in &t.iters {
            assert_eq!(it.backbone.len(), 1);
            let buckets = it.inner.iter().filter(|r| r.site == sites::BUCKET).count();
            let entries = it.inner.iter().filter(|r| r.site == sites::ENTRY).count();
            assert_eq!((buckets, entries), (1, 1));
        }
    }

    #[test]
    fn bucket_reads_stay_inside_the_bucket_array() {
        let m = Mst::build(MstConfig::tiny());
        let t = m.trace();
        for (_, r) in t.tagged_refs().filter(|(_, r)| r.site == sites::BUCKET) {
            let ok = m
                .bucket_addr
                .iter()
                .any(|&b| r.vaddr >= b && r.vaddr < b + (m.cfg.buckets as u64) * 8);
            assert!(
                ok,
                "bucket read at {:#x} outside every bucket array",
                r.vaddr
            );
        }
    }

    #[test]
    fn mst_weight_is_stable_and_positive() {
        let m = Mst::build(MstConfig::tiny());
        let w = m.mst_weight_native();
        assert_eq!(w, m.mst_weight_native());
        assert!(w > 0);
        // n-1 edges, each of weight >= 1 and < 65_522.
        let n = m.cfg.nodes as u64;
        assert!(w >= n - 1 && w < (n - 1) * 65_522);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_buckets_rejected() {
        let _ = Mst::build(MstConfig {
            buckets: 12,
            ..MstConfig::tiny()
        });
    }
}
