//! Skip-list search — batched lookups over a probabilistic tower LDS.
//!
//! A skip list keeps sorted keys in a linked list with geometric
//! express-lane towers. The hot loop drains a batch of queries: each
//! query reads its key from a sequential query array (strided), then
//! descends from the head tower — at each visited node it reads the
//! node's key and forward pointer for the current level, dropping a
//! level when the next key overshoots. The descent addresses are
//! fragmented-heap node records revisited across queries (the upper
//! levels especially), which is what gives content-directed prefetchers
//! repeated pointer transitions to learn.

use crate::arena::Arena;
use sp_trace::SmallRng;
use sp_trace::{HotLoopTrace, IterRecord, MemRef, VAddr};

/// Reference-site ids used in skip-list traces.
pub mod sites {
    use sp_trace::SiteId;
    /// Sequential query-array read `queries[i]` (backbone).
    pub const QUERY: SiteId = SiteId(0);
    /// Head-tower read `head->forward[lvl]`.
    pub const HEAD: SiteId = SiteId(1);
    /// Node read during the descent `x->key / x->forward[lvl]`.
    pub const NODE: SiteId = SiteId(2);
}

/// Skip-list build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipListConfig {
    /// Element count (distinct keys `0, 2, 4, ...` — even values, so
    /// odd queries miss deterministically).
    pub nodes: usize,
    /// Maximum tower height.
    pub max_level: usize,
    /// Number of searches the hot loop performs.
    pub searches: usize,
    /// RNG seed for tower heights, heap layout, and query keys.
    pub seed: u64,
    /// Computation cycles per search (key compares).
    pub compute_per_search: u64,
}

impl SkipListConfig {
    /// Default scaled input matched to the scaled cache config.
    pub fn scaled() -> Self {
        SkipListConfig {
            nodes: 4096,
            max_level: 12,
            searches: 4096,
            seed: 0x5C1,
            compute_per_search: 8,
        }
    }

    /// A small input for fast tests.
    pub fn tiny() -> Self {
        SkipListConfig {
            nodes: 128,
            max_level: 7,
            searches: 96,
            ..Self::scaled()
        }
    }
}

/// A built skip list plus its query batch.
#[derive(Debug, Clone)]
pub struct SkipList {
    cfg: SkipListConfig,
    /// Simulated address of the head tower.
    head_addr: VAddr,
    /// Simulated base address of the query array (8B entries).
    query_base: VAddr,
    /// Simulated address of each node record.
    node_addr: Vec<VAddr>,
    /// `forward[lvl][i]` = index of node `i`'s successor at `lvl`
    /// (`u32::MAX` = end of list). Index 0.. are the sorted nodes.
    forward: Vec<Vec<u32>>,
    /// `head_fwd[lvl]` = first node at `lvl` (`u32::MAX` = empty level).
    head_fwd: Vec<u32>,
    /// The query keys, in batch order.
    queries: Vec<u64>,
}

impl SkipList {
    /// Node `i` holds key `2 * i` (sorted by construction).
    fn key_of(i: u32) -> u64 {
        2 * i as u64
    }

    /// Build the list and the query batch.
    pub fn build(cfg: SkipListConfig) -> Self {
        assert!(cfg.nodes >= 2);
        assert!(cfg.max_level >= 1 && cfg.max_level <= 32);
        assert!(cfg.searches >= 1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut arena = Arena::fragmented(0xB00_0000, 128, cfg.seed ^ 0x5EA);
        let head_addr = arena.alloc(64, 64);
        let query_base = arena.alloc_array(cfg.searches as u64, 8, 64);
        let node_addr: Vec<VAddr> = (0..cfg.nodes).map(|_| arena.alloc(64, 64)).collect();
        // Geometric tower heights (p = 1/2), capped at max_level.
        let level: Vec<u8> = (0..cfg.nodes)
            .map(|_| {
                let mut l = 1u8;
                while (l as usize) < cfg.max_level && rng.gen_bool(0.5) {
                    l += 1;
                }
                l
            })
            .collect();
        // Nodes are already sorted (key = 2i); link each level.
        let mut forward = vec![vec![u32::MAX; cfg.nodes]; cfg.max_level];
        let mut head_fwd = vec![u32::MAX; cfg.max_level];
        for (lvl, fwd) in forward.iter_mut().enumerate() {
            let mut prev: Option<usize> = None;
            for (i, &l) in level.iter().enumerate() {
                if (l as usize) > lvl {
                    match prev {
                        Some(p) => fwd[p] = i as u32,
                        None => head_fwd[lvl] = i as u32,
                    }
                    prev = Some(i);
                }
            }
        }
        // Query mix: ~half present (even), ~half absent (odd).
        let queries = (0..cfg.searches)
            .map(|_| rng.gen_range(0..2 * cfg.nodes as u64))
            .collect();
        SkipList {
            cfg,
            head_addr,
            query_base,
            node_addr,
            forward,
            head_fwd,
            queries,
        }
    }

    /// This instance's configuration.
    pub fn config(&self) -> SkipListConfig {
        self.cfg
    }

    /// Outer-hot-loop iterations: one per search.
    pub fn hot_iterations(&self) -> usize {
        self.cfg.searches
    }

    /// First node at `lvl` (the head's forward pointer), if any.
    fn head_forward(&self, lvl: usize) -> u32 {
        self.head_fwd[lvl]
    }

    /// Walk one search, invoking `visit(node_index, level)` per node
    /// read; returns whether the key was found.
    fn search_with(&self, key: u64, mut visit: impl FnMut(u32, usize)) -> bool {
        let mut at: Option<u32> = None; // None = head
        for lvl in (0..self.cfg.max_level).rev() {
            loop {
                let next = match at {
                    None => self.head_forward(lvl),
                    Some(i) => self.forward[lvl][i as usize],
                };
                if next == u32::MAX || Self::key_of(next) > key {
                    break;
                }
                visit(next, lvl);
                if Self::key_of(next) == key {
                    return true;
                }
                at = Some(next);
            }
        }
        false
    }

    /// Emit the query batch's reference stream.
    pub fn trace(&self) -> HotLoopTrace {
        let mut t = HotLoopTrace::new("skiplist::search");
        t.site_names = vec![
            "queries[i]".into(),
            "head->forward[lvl]".into(),
            "x->forward[lvl]".into(),
        ];
        t.iters = self.iter_records().collect();
        t
    }

    /// Stream the search iterations without materializing the trace.
    pub fn iter_records(&self) -> impl Iterator<Item = IterRecord> + '_ {
        self.queries.iter().enumerate().map(move |(i, &key)| {
            let mut inner = vec![MemRef::load(self.head_addr, sites::HEAD)];
            self.search_with(key, |node, _| {
                inner.push(MemRef::load(self.node_addr[node as usize], sites::NODE));
            });
            IterRecord {
                backbone: vec![MemRef::load(self.query_base + i as u64 * 8, sites::QUERY)],
                inner,
                compute_cycles: self.cfg.compute_per_search,
            }
        })
    }

    /// Stream `(outer_iteration, reference)` pairs.
    pub fn ref_iter(&self) -> impl Iterator<Item = (u32, MemRef)> + '_ {
        self.iter_records().enumerate().flat_map(|(i, it)| {
            let refs: Vec<MemRef> = it.refs().copied().collect();
            refs.into_iter().map(move |r| (i as u32, r))
        })
    }

    /// Native result: `(found, miss)` counts over the query batch.
    pub fn search_native(&self) -> (u64, u64) {
        let mut found = 0u64;
        for &q in &self.queries {
            if self.search_with(q, |_, _| {}) {
                found += 1;
            }
        }
        (found, self.cfg.searches as u64 - found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = SkipList::build(SkipListConfig::tiny());
        let b = SkipList::build(SkipListConfig::tiny());
        assert_eq!(a.forward, b.forward);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.node_addr, b.node_addr);
    }

    #[test]
    fn search_agrees_with_key_parity() {
        let s = SkipList::build(SkipListConfig::tiny());
        for &q in &s.queries {
            let hit = s.search_with(q, |_, _| {});
            let expect = q % 2 == 0 && q < 2 * s.cfg.nodes as u64;
            assert_eq!(hit, expect, "query {q}");
        }
        let (found, miss) = s.search_native();
        assert!(found > 0 && miss > 0, "mix must contain hits and misses");
    }

    #[test]
    fn descents_are_logarithmic_not_linear() {
        let s = SkipList::build(SkipListConfig::tiny());
        let t = s.trace();
        assert_eq!(t.outer_iters(), s.hot_iterations());
        let worst = t.iters.iter().map(|it| it.inner.len()).max().unwrap();
        // A linear scan would visit ~nodes; towers keep it far smaller.
        assert!(
            worst < s.cfg.nodes / 2,
            "worst descent {worst} looks linear"
        );
    }

    #[test]
    fn query_reads_are_strided() {
        let s = SkipList::build(SkipListConfig::tiny());
        let t = s.trace();
        let reads: Vec<VAddr> = t
            .tagged_refs()
            .filter(|(_, r)| r.site == sites::QUERY)
            .map(|(_, r)| r.vaddr)
            .collect();
        for w in reads.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn node_reads_are_record_bases() {
        let s = SkipList::build(SkipListConfig::tiny());
        let t = s.trace();
        for (_, r) in t.tagged_refs().filter(|(_, r)| r.site == sites::NODE) {
            assert!(s.node_addr.contains(&r.vaddr));
        }
    }
}
