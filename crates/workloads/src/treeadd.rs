//! TreeAdd (Olden) — recursive sum over a binary tree.
//!
//! Not one of the paper's three evaluated benchmarks, but part of the
//! Olden suite the paper screened (§IV.B: the authors ran the entire
//! SPEC2006 and Olden suites and *selected* the applications whose cycles
//! are dominated by L2 misses). TreeAdd's post-order walk over a
//! heap-scattered tree is memory-bound once the tree outgrows the L2, so
//! the selection experiment accepts it — and it doubles as a fourth LDS
//! workload for exercising the SP API beyond the paper's trio.
//!
//! The hot "outer loop" is the post-order node visit sequence: one node
//! header load per iteration (the backbone — the recursion must
//! dereference the node to find its children).

use crate::arena::Arena;
use sp_trace::{HotLoopTrace, IterRecord, MemRef, VAddr};

/// Reference-site ids used in TreeAdd traces.
pub mod sites {
    use sp_trace::SiteId;
    /// `node->left` / `node->right` dereference (backbone).
    pub const NODE: SiteId = SiteId(0);
    /// `node->value` load.
    pub const VALUE: SiteId = SiteId(1);
}

/// TreeAdd build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeAddConfig {
    /// Tree depth; the tree has `2^depth - 1` nodes.
    pub depth: u32,
    /// Seed for the fragmented heap layout.
    pub seed: u64,
    /// Computation cycles per visited node (the addition).
    pub compute_per_node: u64,
}

impl TreeAddConfig {
    /// Default scaled input: 2^15 - 1 nodes (~2MB of 64-byte nodes, 8x
    /// the scaled L2).
    pub fn scaled() -> Self {
        TreeAddConfig {
            depth: 15,
            seed: 0x7EE,
            compute_per_node: 1,
        }
    }

    /// A small input for fast tests.
    pub fn tiny() -> Self {
        TreeAddConfig {
            depth: 7,
            ..Self::scaled()
        }
    }
}

/// A built TreeAdd instance.
#[derive(Debug, Clone)]
pub struct TreeAdd {
    cfg: TreeAddConfig,
    /// Simulated node addresses, in heap-allocation (pre-order) order.
    node_addr: Vec<VAddr>,
    /// Native node values.
    pub values: Vec<i64>,
}

impl TreeAdd {
    /// Build the tree (Olden allocates it pre-order, one node at a time,
    /// so siblings end up scattered by the recursion's other subtrees).
    pub fn build(cfg: TreeAddConfig) -> Self {
        assert!(
            cfg.depth >= 1 && cfg.depth <= 26,
            "depth must be in [1, 26]"
        );
        let n = (1usize << cfg.depth) - 1;
        let mut arena = Arena::fragmented(0x4000_0000, 96, cfg.seed);
        let mut node_addr = vec![0; n];
        // Pre-order allocation: node i's children are 2i+1 and 2i+2 in
        // heap-index terms, but allocation order follows the recursion.
        fn alloc(idx: usize, n: usize, arena: &mut Arena, out: &mut Vec<VAddr>) {
            if idx >= n {
                return;
            }
            out[idx] = arena.alloc(64, 64);
            alloc(2 * idx + 1, n, arena, out);
            alloc(2 * idx + 2, n, arena, out);
        }
        alloc(0, n, &mut arena, &mut node_addr);
        let values = (0..n as i64).map(|i| (i * 7919) % 1000).collect();
        TreeAdd {
            cfg,
            node_addr,
            values,
        }
    }

    /// This instance's configuration.
    pub fn config(&self) -> TreeAddConfig {
        self.cfg
    }

    /// Nodes in the tree.
    pub fn nodes(&self) -> usize {
        self.node_addr.len()
    }

    /// Outer-hot-loop iterations of one full walk (= node count).
    pub fn hot_iterations(&self) -> usize {
        self.nodes()
    }

    /// Emit the reference stream of one post-order `TreeAdd` walk.
    pub fn trace(&self) -> HotLoopTrace {
        let mut t = HotLoopTrace::new("treeadd::TreeAdd");
        t.site_names = vec!["node->left/right".into(), "node->value".into()];
        let n = self.nodes();
        // Iterative post-order to avoid recursion depth limits on big
        // trees.
        let mut stack = vec![(0usize, false)];
        while let Some((idx, expanded)) = stack.pop() {
            if idx >= n {
                continue;
            }
            if expanded {
                t.iters.push(IterRecord {
                    backbone: vec![MemRef::load(self.node_addr[idx], sites::NODE)],
                    inner: vec![MemRef::load(self.node_addr[idx] + 8, sites::VALUE)],
                    compute_cycles: self.cfg.compute_per_node,
                });
            } else {
                stack.push((idx, true));
                stack.push((2 * idx + 2, false));
                stack.push((2 * idx + 1, false));
            }
        }
        t
    }

    /// Native post-order sum.
    pub fn sum_native(&self) -> i64 {
        let n = self.nodes();
        let mut total = 0i64;
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            if idx >= n {
                continue;
            }
            total = total.wrapping_add(self.values[idx]);
            stack.push(2 * idx + 1);
            stack.push(2 * idx + 2);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_matches_depth() {
        let t = TreeAdd::build(TreeAddConfig::tiny());
        assert_eq!(t.nodes(), 127);
        assert_eq!(t.hot_iterations(), 127);
    }

    #[test]
    fn trace_visits_every_node_exactly_once() {
        let tree = TreeAdd::build(TreeAddConfig::tiny());
        let trace = tree.trace();
        assert_eq!(trace.outer_iters(), tree.nodes());
        let mut seen = std::collections::HashSet::new();
        for it in &trace.iters {
            assert_eq!(it.backbone.len(), 1);
            assert_eq!(it.inner.len(), 1);
            assert!(seen.insert(it.backbone[0].vaddr), "node visited twice");
        }
    }

    #[test]
    fn trace_is_post_order() {
        let tree = TreeAdd::build(TreeAddConfig {
            depth: 3,
            ..TreeAddConfig::tiny()
        });
        let trace = tree.trace();
        // Post-order of a 7-node heap tree: 3,4,1,5,6,2,0 (heap indices).
        let order: Vec<usize> = trace
            .iters
            .iter()
            .map(|it| {
                tree.node_addr
                    .iter()
                    .position(|&a| a == it.backbone[0].vaddr)
                    .unwrap()
            })
            .collect();
        assert_eq!(order, vec![3, 4, 1, 5, 6, 2, 0]);
    }

    #[test]
    fn native_sum_matches_values() {
        let tree = TreeAdd::build(TreeAddConfig::tiny());
        let expect: i64 = tree.values.iter().sum();
        assert_eq!(tree.sum_native(), expect);
    }

    #[test]
    fn build_is_deterministic() {
        let a = TreeAdd::build(TreeAddConfig::tiny());
        let b = TreeAdd::build(TreeAddConfig::tiny());
        assert_eq!(a.node_addr, b.node_addr);
    }

    #[test]
    #[should_panic(expected = "depth must be")]
    fn zero_depth_rejected() {
        let _ = TreeAdd::build(TreeAddConfig {
            depth: 0,
            ..TreeAddConfig::tiny()
        });
    }
}
