//! Property tests: workload construction invariants across input sizes.
//!
//! Deterministic randomized cases via `sp_testkit::check` (std-only).

use sp_testkit::{check, gen_vec};
use sp_workloads::{em3d, mcf, mst, Em3d, Em3dConfig, Mcf, McfConfig, Mst, MstConfig};

/// EM3D stays bipartite and its trace matches the configured shape
/// for arbitrary (small) sizes and seeds.
#[test]
fn em3d_shape() {
    check(32, |rng| {
        let half = rng.gen_range(2usize..40);
        let degree = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..100);
        let frag = rng.gen_bool(0.5);
        let cfg = Em3dConfig {
            nodes: half * 2,
            degree,
            seed,
            fragmented: frag,
            compute_per_edge: 2,
            native: true,
        };
        let g = Em3d::build(cfg);
        let t = g.trace();
        assert_eq!(t.outer_iters(), cfg.nodes);
        for (i, it) in t.iters.iter().enumerate() {
            assert_eq!(it.backbone.len(), 1);
            assert_eq!(it.inner.len(), 3 * degree + 1);
            for &o in g.neighbours(i) {
                assert_ne!(i < half, (o as usize) < half, "edge must cross partition");
            }
        }
        // Node addresses are 64-byte aligned and distinct.
        let mut seen = std::collections::HashSet::new();
        for (_, r) in t.tagged_refs().filter(|(_, r)| r.site == em3d::sites::NEXT) {
            assert_eq!(r.vaddr % 64, 0);
            seen.insert(r.vaddr);
        }
        assert_eq!(seen.len(), cfg.nodes);
    });
}

/// EM3D's native kernel is seed-deterministic and finite.
#[test]
fn em3d_native_deterministic() {
    check(32, |rng| {
        let half = rng.gen_range(2usize..20);
        let seed = rng.gen_range(0u64..50);
        let cfg = Em3dConfig {
            nodes: half * 2,
            degree: 3,
            seed,
            fragmented: true,
            compute_per_edge: 1,
            native: true,
        };
        let mut a = Em3d::build(cfg);
        let mut b = Em3d::build(cfg);
        let (ca, cb) = (a.compute_native(), b.compute_native());
        assert_eq!(ca, cb);
        assert!(ca.is_finite());
    });
}

/// MCF: the arc scan is sequential, endpoints are valid and never
/// self-loops, and the trace has one iteration per arc.
#[test]
fn mcf_shape() {
    check(32, |rng| {
        let arcs = rng.gen_range(1usize..400);
        let nodes = rng.gen_range(2usize..64);
        let seed = rng.gen_range(0u64..100);
        let cfg = McfConfig {
            arcs,
            nodes,
            seed,
            compute_per_arc: 3,
            basket_one_in: 7,
        };
        let m = Mcf::build(cfg);
        let t = m.trace();
        assert_eq!(t.outer_iters(), arcs);
        for &(tail, head) in &m.endpoints {
            assert!(tail != head);
            assert!((tail as usize) < nodes && (head as usize) < nodes);
        }
        let arcs_refs: Vec<u64> = t
            .tagged_refs()
            .filter(|(_, r)| r.site == mcf::sites::ARC)
            .map(|(_, r)| r.vaddr)
            .collect();
        for w in arcs_refs.windows(2) {
            assert_eq!(w[1] - w[0], mcf::ARC_BYTES);
        }
        let (basket, _) = m.price_native();
        assert!(basket >= arcs.div_ceil(cfg.basket_one_in));
    });
}

/// MST: the trace is triangular, weights symmetric, and Prim's tree
/// weight bounded by n-1 maximal edges.
#[test]
fn mst_shape() {
    check(32, |rng| {
        let nodes = rng.gen_range(3usize..24);
        let seed = rng.gen_range(0u64..100);
        let cfg = MstConfig {
            nodes,
            buckets: 8,
            seed,
            compute_per_visit: 2,
            native: true,
        };
        let m = Mst::build(cfg);
        let t = m.trace();
        assert_eq!(t.outer_iters(), nodes * (nodes - 1) / 2);
        for u in 0..nodes {
            for v in 0..nodes {
                assert_eq!(m.weight[u * nodes + v], m.weight[v * nodes + u]);
            }
        }
        let w = m.mst_weight_native();
        assert!(w >= (nodes as u64 - 1));
        assert!(w <= (nodes as u64 - 1) * 65_521);
        // Every iteration probes exactly one bucket within bounds.
        for (_, r) in t
            .tagged_refs()
            .filter(|(_, r)| r.site == mst::sites::BUCKET)
        {
            assert_eq!(r.vaddr % 8, 0);
        }
    });
}

/// The arena never hands out overlapping allocations.
#[test]
fn arena_no_overlap() {
    check(32, |rng| {
        let sizes = gen_vec(rng, 1..60, |r| r.gen_range(1u64..256));
        let gap = rng.gen_range(0u64..128);
        let seed = rng.gen_range(0u64..50);
        let mut a = sp_workloads::Arena::fragmented(0x1000, gap, seed);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for s in sizes {
            let p = a.alloc(s, 8);
            assert_eq!(p % 8, 0);
            for &(q, len) in &regions {
                assert!(p >= q + len || p + s <= q, "overlap at {p:#x}");
            }
            regions.push((p, s));
        }
    });
}

mod streaming_equivalence {
    use super::*;

    /// The streaming iterators must produce exactly the materialized
    /// trace for every workload (the paper-scale analyses rely on this).
    #[test]
    fn iter_records_equal_trace() {
        let em3d = Em3d::build(Em3dConfig::tiny());
        assert!(em3d.iter_records().eq(em3d.trace().iters.into_iter()));
        let mcf = Mcf::build(McfConfig::tiny());
        assert!(mcf.iter_records().eq(mcf.trace().iters.into_iter()));
        let mst = Mst::build(MstConfig::tiny());
        assert!(mst.iter_records().eq(mst.trace().iters.into_iter()));
    }

    #[test]
    fn ref_iter_equals_tagged_refs() {
        let em3d = Em3d::build(Em3dConfig::tiny());
        let t = em3d.trace();
        let a: Vec<(u32, sp_trace::MemRef)> = em3d.ref_iter().collect();
        let b: Vec<(u32, sp_trace::MemRef)> = t.tagged_refs().map(|(i, r)| (i, *r)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn layout_only_builds_still_stream() {
        // Paper-scale configs skip the native arrays but must still
        // produce the full reference stream.
        let cfg = Em3dConfig {
            nodes: 64,
            degree: 4,
            native: false,
            ..Em3dConfig::tiny()
        };
        let g = Em3d::build(cfg);
        assert!(g.values.is_empty() && g.coeffs.is_empty());
        assert_eq!(g.ref_iter().count(), g.trace().total_refs());
        let mcfg = MstConfig {
            nodes: 16,
            native: false,
            ..MstConfig::tiny()
        };
        let m = Mst::build(mcfg);
        assert!(m.weight.is_empty());
        assert!(m.iter_records().count() > 0);
    }

    #[test]
    #[should_panic(expected = "layout-only")]
    fn native_kernel_rejected_on_layout_only_build() {
        let cfg = Em3dConfig {
            nodes: 8,
            degree: 2,
            native: false,
            ..Em3dConfig::tiny()
        };
        let mut g = Em3d::build(cfg);
        let _ = g.compute_native();
    }
}
