//! Adaptive (feedback-directed) prefetch-distance control — the paper's
//! future-work direction, end to end.
//!
//! ```text
//! cargo run --release --example adaptive_control [-- <start-distance>]
//! ```
//!
//! Starts the FDP-style controller at a deliberately polluting distance
//! (8x the Set-Affinity bound by default) and shows it walking down to
//! the bound, then compares three policies: the paper's static bound,
//! the free dynamic controller, and the hybrid (dynamic clamped by the
//! bound).

use sp_prefetch::cachesim::CacheConfig;
use sp_prefetch::core::prelude::*;
use sp_prefetch::core::{run_sp_adaptive, FeedbackController};
use sp_prefetch::workloads::{Benchmark, Workload};

fn main() {
    let cfg = CacheConfig::scaled_default();
    let w = Workload::scaled(Benchmark::Em3d);
    let trace = w.trace();
    let rec = recommend_distance(&trace, &cfg);
    let bound = rec.max_distance.expect("EM3D overflows");
    let start: u32 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("start distance must be a number"))
        .unwrap_or(bound * 8);
    println!("EM3D: Set-Affinity bound {bound}; controller starts at {start}\n");

    let baseline = run_original(&trace, cfg);
    let norm = |rt| rt as f64 / baseline.runtime as f64;

    // The paper's static policy.
    let static_run = run_sp(&trace, cfg, SpParams::from_distance_rp(bound / 2, 0.5));

    // Free dynamic controller.
    let mut free_ctl = FeedbackController::new(start, 0.5);
    let free = run_sp_adaptive(&trace, cfg, &mut free_ctl, 128);

    // Hybrid: dynamic, clamped by the bound.
    let mut hybrid_ctl = FeedbackController::new(start, 0.5).bounded(bound);
    let hybrid = run_sp_adaptive(&trace, cfg, &mut hybrid_ctl, 128);

    println!("epoch-by-epoch distance (free controller):");
    println!(
        "{:>6} {:>9} {:>10} {:>10} {:>10}",
        "epoch", "distance", "accuracy", "lateness", "pollution"
    );
    for e in free.epochs.iter().take(12) {
        println!(
            "{:>6} {:>9} {:>10.2} {:>10.2} {:>10.2}",
            e.feedback.epoch,
            e.feedback.params.a_ski,
            e.feedback.accuracy(),
            e.feedback.lateness(),
            e.feedback.pollution_rate()
        );
    }
    println!("  ...\n");
    println!("policy comparison (normalized runtime, lower is better):");
    println!("  static at bound/2:      {:.3}", norm(static_run.runtime));
    println!(
        "  dynamic (start {start}):   {:.3}  (settled at distance {})",
        norm(free.run.runtime),
        free.epochs.last().map(|e| e.next_distance).unwrap_or(start)
    );
    println!(
        "  dynamic + bound clamp:  {:.3}  (settled at distance {})",
        norm(hybrid.run.runtime),
        hybrid
            .epochs
            .last()
            .map(|e| e.next_distance)
            .unwrap_or(start)
    );
    println!("\nThe static Set-Affinity analysis is right from iteration one;");
    println!("the dynamic controller re-discovers the same distance but pays");
    println!("for the exploration. Clamping it with the bound removes the risk.");
}
