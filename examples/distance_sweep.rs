//! Prefetch-distance sweep over any benchmark — Figures 2/4/5/6 from the
//! command line.
//!
//! ```text
//! cargo run --release --example distance_sweep -- [em3d|mcf|mst] [d1 d2 ...]
//! ```
//!
//! Runs the original program once, then SP (RP = 0.5) at each distance,
//! printing the normalized curves and marking the Set-Affinity bound.

use sp_prefetch::cachesim::CacheConfig;
use sp_prefetch::core::prelude::*;
use sp_prefetch::workloads::{Benchmark, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = match args.first().map(String::as_str) {
        None | Some("em3d") => Benchmark::Em3d,
        Some("mcf") => Benchmark::Mcf,
        Some("mst") => Benchmark::Mst,
        Some(other) => {
            eprintln!("unknown benchmark {other}; expected em3d|mcf|mst");
            std::process::exit(2);
        }
    };
    let mut distances: Vec<u32> = args
        .iter()
        .skip(1)
        .map(|a| a.parse().expect("distance must be a number"))
        .collect();

    let cfg = CacheConfig::scaled_default();
    let w = Workload::scaled(bench);
    let trace = w.trace();
    let rec = recommend_distance(&trace, &cfg);
    let bound = rec.max_distance.unwrap_or(u32::MAX);
    if distances.is_empty() {
        // Default grid bracketing the bound, half below, half above.
        distances = [bound / 8, bound / 4, bound / 2, bound, bound * 2, bound * 4]
            .into_iter()
            .filter(|&d| d >= 1)
            .collect();
        distances.dedup();
    }

    println!(
        "{}: SA range {:?}, distance bound {} (paper rule: < min SA / 2)",
        bench.name(),
        rec.affinity.range(),
        bound
    );
    let sweep = sweep_distances(&trace, cfg, 0.5, &distances);
    println!(
        "\n{:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "distance", "runtime", "mem_acc", "misses", "dTH%", "dTM%", "dPH%", "pollution"
    );
    for p in &sweep.points {
        let marker = if p.distance <= bound { " " } else { "!" };
        println!(
            "{marker}{:>8} {:>9.3} {:>9.3} {:>9.3} {:>+8.2} {:>+8.2} {:>+8.2} {:>10}",
            p.distance,
            p.runtime_norm,
            p.memory_accesses_norm,
            p.hot_misses_norm,
            p.behavior.totally_hit_pct,
            p.behavior.totally_miss_pct,
            p.behavior.partially_hit_pct,
            p.pollution.stats.total()
        );
    }
    println!("\n('!' marks distances beyond the Set-Affinity bound)");
    if let Some(best) = sweep.best_distance() {
        println!("best distance in this sweep: {best}");
    }
}
