//! Native-hardware SP demo: a real helper thread issuing `_mm_prefetch`
//! alongside the real EM3D / MCF / MST kernels.
//!
//! ```text
//! cargo run --release --example native_prefetch
//! ```
//!
//! Wall-clock numbers depend on the machine (core count, cache sizes,
//! frequency scaling) and are **not** the paper's reproduction — the
//! figures come from the deterministic simulator. What this example
//! demonstrates is the mechanism end-to-end: the helper covers its RP
//! share of iterations, stays inside the sync window, and never changes
//! any computed result.

use sp_prefetch::core::SpParams;
use sp_prefetch::native::{run_em3d_native, run_mcf_native, run_mst_native};
use sp_prefetch::workloads::{Em3d, Em3dConfig, Mcf, McfConfig, Mst, MstConfig};

fn main() {
    println!("(wall-clock; machine-dependent, not a paper figure)\n");

    // EM3D — larger than the simulator default so the helper has work.
    let cfg = Em3dConfig {
        nodes: 65_536,
        degree: 16,
        ..Em3dConfig::scaled()
    };
    let mut base_graph = Em3d::build(cfg);
    let base = run_em3d_native(&mut base_graph, None, 5);
    let mut sp_graph = Em3d::build(cfg);
    let sp = run_em3d_native(&mut sp_graph, Some(SpParams::new(16, 16)), 5);
    assert_eq!(base.checksum, sp.checksum, "helper must not change results");
    println!(
        "EM3D  ({} nodes): original {:>10.3?}  SP {:>10.3?}  covered {} iters",
        cfg.nodes, base.elapsed, sp.elapsed, sp.helper_covered
    );

    // MCF pricing.
    let mcfg = McfConfig {
        arcs: 1_000_000,
        nodes: 65_536,
        ..McfConfig::scaled()
    };
    let mcf = Mcf::build(mcfg);
    let base = run_mcf_native(&mcf, None, 5);
    let sp = run_mcf_native(&mcf, Some(SpParams::new(64, 64)), 5);
    assert_eq!(base.checksum, sp.checksum);
    println!(
        "MCF   ({} arcs): original {:>10.3?}  SP {:>10.3?}  covered {} arcs",
        mcfg.arcs, base.elapsed, sp.elapsed, sp.helper_covered
    );

    // MST (Prim).
    let scfg = MstConfig {
        nodes: 4096,
        ..MstConfig::scaled()
    };
    let mst = Mst::build(scfg);
    let base = run_mst_native(&mst, None);
    let sp = run_mst_native(&mst, Some(SpParams::new(4, 4)));
    assert_eq!(base.checksum, sp.checksum);
    println!(
        "MST   ({} nodes): original {:>10.3?}  SP {:>10.3?}  covered {} chunks",
        scfg.nodes, base.elapsed, sp.elapsed, sp.helper_covered
    );

    println!("\nAll checksums identical with and without the helper: prefetching is a pure hint.");
}
