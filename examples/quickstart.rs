//! Quickstart: the paper's whole pipeline on one workload, in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds EM3D, profiles its hot loop, derives the Set-Affinity prefetch
//! distance bound, and compares the original run against SP at an
//! in-bound and an out-of-bound distance.

use sp_prefetch::cachesim::CacheConfig;
use sp_prefetch::core::prelude::*;
use sp_prefetch::workloads::{Benchmark, Workload};

fn main() {
    // 1. Build the workload and record its hot loop's reference stream.
    let workload = Workload::scaled(Benchmark::Em3d);
    let trace = workload.trace();
    let cfg = CacheConfig::scaled_default();
    println!(
        "workload: {} ({})",
        workload.benchmark().name(),
        workload.input_description()
    );
    println!(
        "hot loop: {} outer iterations, {} references",
        trace.outer_iters(),
        trace.total_refs()
    );

    // 2. Set Affinity analysis (paper Fig. 3) -> prefetch distance bound.
    let rec = recommend_distance(&trace, &cfg);
    let bound = rec.max_distance.expect("EM3D overflows L2 sets");
    println!("Set Affinity range: {:?}", rec.affinity.range());
    println!("distance bound (min SA / 2): {bound}");

    // 3. Select RP from CALR (paper: CALR ~ 0 => RP ~ 0.5).
    let calr = estimate_calr(&trace, cfg.l1, cfg.l2, cfg.policy, cfg.latency).calr;
    let rp = select_rp(calr);
    println!("CALR = {calr:.3} => RP = {rp:.2}");

    // 4. Run: original vs SP inside the bound vs SP far outside it.
    let baseline = run_original(&trace, cfg);
    println!(
        "\n{:>20} {:>12} {:>12} {:>12}",
        "", "runtime", "L2 misses", "pollution"
    );
    println!(
        "{:>20} {:>12} {:>12} {:>12}",
        "original",
        baseline.runtime,
        baseline.stats.main.total_misses,
        baseline.stats.pollution.total()
    );
    for (label, d) in [("SP (in bound)", bound / 2), ("SP (4x bound)", bound * 4)] {
        let sp = run_sp(&trace, cfg, SpParams::from_distance_rp(d, rp));
        println!(
            "{:>20} {:>12} {:>12} {:>12}   ({:.2}x runtime, distance {})",
            label,
            sp.runtime,
            sp.stats.main.total_misses,
            sp.stats.pollution.total(),
            sp.runtime as f64 / baseline.runtime as f64,
            d
        );
    }
    println!("\nControlling the distance within the bound keeps the speedup and");
    println!("avoids the pollution that the oversized distance introduces.");
}
