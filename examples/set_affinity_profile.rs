//! Set Affinity profiling walkthrough — the paper's §IV methodology on
//! all three benchmarks.
//!
//! ```text
//! cargo run --release --example set_affinity_profile
//! ```
//!
//! For each workload: detect access phases, rank the delinquent loads
//! (the loads the helper thread should cover), burst-sample the stream,
//! and compare the sampled Set Affinity estimate with the full-stream
//! analysis and the paper's Table 2 ranges.

use sp_prefetch::cachesim::CacheConfig;
use sp_prefetch::core::{original_set_affinity, sampled_set_affinity};
use sp_prefetch::profiler::{detect_phases, rank_delinquent_loads, BurstSampler, PhaseConfig};
use sp_prefetch::workloads::{Benchmark, Workload};

fn main() {
    let cfg = CacheConfig::scaled_default();
    let paper = [
        ("EM3D", "[40, 360]"),
        ("MCF", "[3000, 46000]"),
        ("MST", "[6300, 10000]"),
    ];
    for (b, (_, paper_sa)) in Benchmark::ALL.into_iter().zip(paper) {
        let w = Workload::scaled(b);
        let trace = w.trace();
        println!("=== {} ({}) ===", b.name(), w.input_description());

        // Phase behaviour (paper §IV.C: hot functions show phases).
        let phases = detect_phases(&trace, PhaseConfig::default());
        println!("  phases: {}", phases.len());
        for p in phases.iter().take(3) {
            println!(
                "    iters [{}, {}): {:.1} refs/iter, {:.2} new blocks/iter",
                p.start_iter, p.end_iter, p.refs_per_iter, p.blocks_per_iter
            );
        }
        if phases.len() > 3 {
            println!("    ... ({} more)", phases.len() - 3);
        }

        // Delinquent loads: which static sites miss the most.
        let ranked = rank_delinquent_loads(&trace, cfg.l2, cfg.policy);
        println!("  delinquent loads (L2 misses by site):");
        for s in ranked.iter().take(3) {
            let name = trace
                .site_names
                .get(s.site.0 as usize)
                .map(String::as_str)
                .unwrap_or("<anon>");
            println!(
                "    {:30} {:9} misses ({:5.1}% miss rate)",
                name,
                s.misses,
                100.0 * s.miss_rate()
            );
        }

        // Full-stream vs burst-sampled Set Affinity.
        let full = original_set_affinity(&trace, cfg.l2);
        let bursts = BurstSampler::new(1024, 1024).sample(&trace);
        let sampled = sampled_set_affinity(&bursts, cfg.l2);
        println!("  SA(L,Sx) full:    {:?}", full.range());
        println!(
            "  SA(L,Sx) sampled: {:?} (1024-iteration bursts, 50% duty)",
            sampled.range()
        );
        println!("  paper SA:         {paper_sa}");
        println!("  distance bound:   {:?}\n", full.distance_bound());
    }
}
