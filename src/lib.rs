//! # sp-prefetch
//!
//! Umbrella crate for the reproduction of *"Reducing Cache Pollution of
//! Threaded Prefetching by Controlling Prefetch Distance"* (IPDPSW 2012).
//!
//! This crate re-exports the public API of the workspace members so that
//! examples and downstream users need a single dependency:
//!
//! * [`cachesim`] — CMP memory-hierarchy simulator (private L1s, shared L2,
//!   MSHRs, hardware prefetchers, bus contention).
//! * [`trace`] — memory-reference stream representation and synthetic
//!   stream generators.
//! * [`workloads`] — EM3D, MCF, and MST kernels (the paper's benchmarks).
//! * [`profiler`] — interval-based burst sampling and phase detection.
//! * [`core`] — the paper's contribution: Skip helper-threaded Prefetching
//!   (SP), Set Affinity analysis, and prefetch-distance control.
//! * [`native`] — real-thread + `_mm_prefetch` execution path.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-figure reproduction record.

pub use sp_cachesim as cachesim;
pub use sp_core as core;
pub use sp_native as native;
pub use sp_obs as obs;
pub use sp_profiler as profiler;
pub use sp_trace as trace;
pub use sp_workloads as workloads;
