//! Cross-crate integration of the analysis toolchain: record/replay
//! (codec), reuse-distance, adaptive control, and benchmark selection
//! working together on real workloads.

use sp_prefetch::cachesim::{CacheConfig, CacheGeometry};
use sp_prefetch::core::prelude::*;
use sp_prefetch::core::{run_sp_adaptive, FeedbackController};
use sp_prefetch::profiler::{miss_cycle_profile, reuse_histogram, select_benchmarks};
use sp_prefetch::trace::{load_trace, save_trace};
use sp_prefetch::workloads::{Benchmark, Candidate, Workload};

fn cfg() -> CacheConfig {
    CacheConfig {
        l1: CacheGeometry::new(1024, 4, 64),
        l2: CacheGeometry::new(16 * 1024, 8, 64),
        ..CacheConfig::scaled_default()
    }
}

/// Record a workload trace, replay it from disk, and verify every
/// analysis produces identical results on the replayed copy.
#[test]
fn recorded_traces_replay_identically() {
    let dir = std::env::temp_dir().join("sp_analysis_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    for b in Benchmark::ALL {
        let original = Workload::tiny(b).trace();
        let path = dir.join(format!("{}.spt", b.name()));
        save_trace(&original, &path).unwrap();
        let replayed = load_trace(&path).unwrap();

        // Set Affinity identical.
        let c = cfg();
        assert_eq!(
            recommend_distance(&original, &c).affinity,
            recommend_distance(&replayed, &c).affinity,
            "{}: SA must survive record/replay",
            b.name()
        );
        // Reuse histogram identical.
        assert_eq!(
            reuse_histogram(&original, c.l2),
            reuse_histogram(&replayed, c.l2),
            "{}: reuse histogram must survive record/replay",
            b.name()
        );
        // Co-simulation identical.
        assert_eq!(
            run_original(&original, c),
            run_original(&replayed, c),
            "{}: simulation must survive record/replay",
            b.name()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Mattson's reuse histogram predicts the delinquent-ranking replay: the
/// total misses of `rank_delinquent_loads` equal `miss_count(ways)`.
#[test]
fn reuse_histogram_predicts_delinquent_replay() {
    let c = cfg();
    for b in Benchmark::ALL {
        let trace = Workload::tiny(b).trace();
        let h = reuse_histogram(&trace, c.l2);
        let ranked = sp_prefetch::profiler::rank_delinquent_loads(&trace, c.l2, c.policy);
        let ranked_misses: u64 = ranked.iter().map(|s| s.misses).sum();
        assert_eq!(
            h.miss_count(c.l2.ways),
            ranked_misses,
            "{}: two independent L2 models must agree",
            b.name()
        );
    }
}

/// The adaptive controller, clamped by the recommendation, never exceeds
/// the bound on a real workload and ends within [1, bound].
#[test]
fn adaptive_controller_respects_recommended_bound() {
    let c = cfg();
    let trace = Workload::tiny(Benchmark::Em3d).trace();
    let rec = recommend_distance(&trace, &c);
    let bound = rec.max_distance.expect("tiny EM3D overflows a 16KB L2");
    let mut ctl = FeedbackController::new(bound * 8, 0.5).bounded(bound);
    let r = run_sp_adaptive(&trace, c, &mut ctl, 32);
    for e in &r.epochs {
        assert!(
            e.next_distance <= bound,
            "epoch {} chose {}",
            e.feedback.epoch,
            e.next_distance
        );
        assert!(e.next_distance >= 1);
    }
}

/// Selection at tiny scale still ranks the memory-bound LDS candidates
/// above the blocked matmul. (At tiny scale matmul's short trace is
/// cold-miss dominated, so only the *ordering* is asserted here; the
/// accept/reject verdicts are asserted at scaled size in `sp-bench`.)
#[test]
fn tiny_scale_selection_ranks_matmul_last() {
    let c = cfg();
    let candidates: Vec<(String, sp_prefetch::trace::HotLoopTrace)> = Candidate::ALL
        .iter()
        .map(|&x| (x.name().to_string(), x.trace_tiny()))
        .collect();
    let rows = select_benchmarks(&candidates, &c, 0.3);
    let matmul = rows.iter().find(|r| r.name == "MatMul").unwrap();
    let em3d = rows.iter().find(|r| r.name == "EM3D").unwrap();
    assert!(em3d.profile.miss_share() > matmul.profile.miss_share());
    assert_eq!(rows.last().unwrap().name, "MatMul", "matmul must rank last");
}

/// Miss-cycle attribution is conserved: total equals the sum of parts
/// for every candidate.
#[test]
fn miss_cycle_profile_conserves_cycles() {
    let c = cfg();
    for x in Candidate::ALL {
        let t = x.trace_tiny();
        let p = miss_cycle_profile(&t, &c);
        assert_eq!(
            p.total(),
            p.compute_cycles + p.l1_cycles + p.l2_hit_cycles + p.miss_cycles,
            "{}",
            x.name()
        );
    }
}
