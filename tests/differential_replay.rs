//! End-to-end differential: the legacy scalar engine entry points
//! (projecting every reference on the fly) against the precompiled
//! replay path the sweeps now run on. Counters must be bit-identical —
//! the overhaul is a pure representation change.

use sp_cachesim::CacheConfig;
use sp_core::{
    compile_trace, run_original_passes, run_original_passes_compiled, run_sp_with,
    run_sp_with_compiled, sweep_distances_jobs, EngineOptions, SpParams,
};
use sp_workloads::{Benchmark, Workload};

const BENCHES: [Benchmark; 3] = [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst];

#[test]
fn original_passes_scalar_equals_compiled() {
    let cfg = CacheConfig::scaled_default();
    for b in BENCHES {
        let trace = Workload::tiny(b).trace();
        let scalar = run_original_passes(&trace, cfg, 2);
        let ct = compile_trace(&trace, &cfg);
        let compiled = run_original_passes_compiled(&ct, cfg, 2).expect("same geometry");
        assert_eq!(scalar, compiled, "{b:?}: original passes diverged");
        assert!(
            scalar.stats.main.total_misses > 0,
            "{b:?}: degenerate trace"
        );
    }
}

#[test]
fn sp_runs_scalar_equal_compiled_across_distances() {
    let cfg = CacheConfig::scaled_default();
    let opts = EngineOptions::default();
    for b in BENCHES {
        let trace = Workload::tiny(b).trace();
        let ct = compile_trace(&trace, &cfg);
        for d in [2u32, 16, 128] {
            let params = SpParams::from_distance_rp(d, 0.5);
            let scalar = run_sp_with(&trace, cfg, params, opts);
            let compiled = run_sp_with_compiled(&ct, cfg, params, opts).expect("same geometry");
            assert_eq!(scalar, compiled, "{b:?} d={d}: SP runs diverged");
        }
    }
}

#[test]
fn sweep_is_deterministic_across_repeats_and_jobs() {
    // The compiled sweep shares one Arc'd trace across grid points and
    // reuses parked simulators; neither may leak state between runs.
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::tiny(Benchmark::Mcf).trace();
    let distances = [4u32, 32, 256];
    let (first, _) = sweep_distances_jobs(&trace, cfg, 0.5, &distances, 1);
    let (second, _) = sweep_distances_jobs(&trace, cfg, 0.5, &distances, 1);
    let (fanned, _) = sweep_distances_jobs(&trace, cfg, 0.5, &distances, 2);
    assert_eq!(first, second, "repeat sweep diverged");
    assert_eq!(first, fanned, "jobs=2 sweep diverged from jobs=1");
}
