//! Determinism + refinement suite for the epoch flight recorder: the
//! per-window series must be a pure function of the simulated run, so
//! an epoch sweep must produce *byte-identical* NDJSON at any `--jobs`
//! width and any `--lanes` batch width — and every series must fold
//! back to the run-aggregate counters exactly (the epoch↔counter
//! self-check, mirroring `events_determinism.rs` / the event↔counter
//! check of the events layer).

use sp_cachesim::{CacheConfig, EpochSeries};
use sp_core::{
    compile_trace, sweep_epochs_compiled_batched_jobs_with, sweep_epochs_compiled_jobs_with,
    EngineOptions, Sweep, SweepEpochs,
};
use sp_workloads::{Benchmark, Workload};
use std::sync::Arc;

const EPOCH_LEN: u64 = 128;

fn grid(b: Benchmark) -> Vec<u32> {
    match b {
        Benchmark::Em3d => vec![1, 2, 4, 8, 16, 32],
        Benchmark::Mcf => vec![2, 8, 32, 128, 512],
        Benchmark::Mst => vec![1, 3, 9, 27, 81],
    }
}

fn ndjson(s: &Sweep, e: &SweepEpochs) -> String {
    let mut out = e.baseline.to_ndjson("\"distance\":null,");
    for (p, series) in s.points.iter().zip(&e.points) {
        out.push_str(&series.to_ndjson(&format!("\"distance\":{},", p.distance)));
    }
    out
}

#[test]
fn epoch_series_are_byte_identical_at_any_jobs_width() {
    let cfg = CacheConfig::scaled_default();
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let trace = Workload::tiny(b).trace();
        let ct = Arc::new(compile_trace(&trace, &cfg));
        let ds = grid(b);
        let (sweep, epochs, rep) = sweep_epochs_compiled_jobs_with(
            &ct,
            cfg,
            0.5,
            &ds,
            EngineOptions::default(),
            EPOCH_LEN,
            1,
        )
        .expect("compiled for this geometry");
        assert_eq!(rep.jobs, ds.len() + 1, "baseline + one job per distance");
        let expected = ndjson(&sweep, &epochs);
        assert!(
            epochs.points.iter().all(|s| !s.is_empty()),
            "{b:?}: every distance must record windows"
        );
        for jobs in [2, 4, 8] {
            let (s, e, _) = sweep_epochs_compiled_jobs_with(
                &ct,
                cfg,
                0.5,
                &ds,
                EngineOptions::default(),
                EPOCH_LEN,
                jobs,
            )
            .expect("compiled for this geometry");
            assert_eq!(sweep, s, "{b:?}: sweep diverged at --jobs {jobs}");
            assert_eq!(
                expected,
                ndjson(&s, &e),
                "{b:?}: epoch NDJSON diverged at --jobs {jobs}"
            );
        }
    }
}

#[test]
fn epoch_series_are_byte_identical_at_any_lane_width() {
    let cfg = CacheConfig::scaled_default();
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let trace = Workload::tiny(b).trace();
        let ct = Arc::new(compile_trace(&trace, &cfg));
        let ds = grid(b);
        let mut reference: Option<(Sweep, String)> = None;
        for lanes in [1, 2, 4, 8] {
            let (s, e, _) = sweep_epochs_compiled_batched_jobs_with(
                &ct,
                cfg,
                0.5,
                &ds,
                EngineOptions::default(),
                EPOCH_LEN,
                2,
                lanes,
            )
            .expect("compiled for this geometry");
            let nd = ndjson(&s, &e);
            match &reference {
                None => reference = Some((s, nd)),
                Some((sweep0, nd0)) => {
                    assert_eq!(sweep0, &s, "{b:?}: sweep diverged at --lanes {lanes}");
                    assert_eq!(nd0, &nd, "{b:?}: epoch NDJSON diverged at --lanes {lanes}");
                }
            }
        }
    }
}

#[test]
fn epoch_totals_fold_exactly_to_the_run_counters() {
    let cfg = CacheConfig::scaled_default();
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let trace = Workload::tiny(b).trace();
        let ct = Arc::new(compile_trace(&trace, &cfg));
        let (sweep, epochs, _) = sweep_epochs_compiled_jobs_with(
            &ct,
            cfg,
            0.5,
            &grid(b),
            EngineOptions::default(),
            EPOCH_LEN,
            2,
        )
        .expect("compiled for this geometry");
        let pairs: Vec<(&EpochSeries, &sp_core::RunResult)> =
            std::iter::once((&epochs.baseline, &sweep.baseline))
                .chain(
                    epochs
                        .points
                        .iter()
                        .zip(sweep.points.iter().map(|p| &p.run)),
                )
                .collect();
        for (series, run) in pairs {
            let t = series.totals();
            let m = &run.stats.main;
            assert_eq!(
                t.main,
                [m.l1_hits, m.total_hits, m.partial_hits, m.total_misses],
                "{b:?}: main-thread hit classes must fold exactly"
            );
            let h = &run.stats.helper;
            assert_eq!(
                t.helper,
                [h.l1_hits, h.total_hits, h.partial_hits, h.total_misses],
                "{b:?}: helper-thread hit classes must fold exactly"
            );
            assert_eq!(t.issued, run.stats.prefetches_issued, "{b:?}: issued");
            assert_eq!(
                t.first_uses, run.stats.prefetches_useful,
                "{b:?}: first uses"
            );
            assert_eq!(
                series.pollution_stats(),
                run.stats.pollution,
                "{b:?}: displacement cases must fold exactly"
            );
            // Window bookkeeping: every window but the last is full, and
            // indices are dense.
            for (i, w) in series.epochs.iter().enumerate() {
                assert_eq!(w.index, i as u64, "{b:?}: window indices are dense");
            }
            for w in &series.epochs[..series.len().saturating_sub(1)] {
                assert_eq!(w.refs, EPOCH_LEN, "{b:?}: only the last window is partial");
            }
        }
    }
}
