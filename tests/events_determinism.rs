//! Satellite regression suite for the observability layer: the event
//! stream must be a pure function of the simulated run, so replaying a
//! benchmark under any `--jobs` width must produce *identical* event
//! sequences — and identical NDJSON bytes — not just matching
//! aggregates. Styled on `parallel_determinism.rs`: exact equality,
//! because any divergence is a scheduling leak into the simulation.

use sp_cachesim::{default_early_threshold, CacheConfig, EventSummary, RingSink};
use sp_core::prelude::*;
use sp_core::{
    compile_trace, run_sp_with_compiled_ev, sweep_events_compiled_jobs_with, EngineOptions,
};
use sp_trace::CompiledTrace;
use sp_workloads::{Benchmark, Workload};
use std::sync::Arc;

fn grid(b: Benchmark) -> Vec<u32> {
    match b {
        Benchmark::Em3d => vec![1, 2, 4, 8, 16, 32],
        Benchmark::Mcf => vec![2, 8, 32, 128, 512],
        Benchmark::Mst => vec![1, 3, 9, 27, 81],
    }
}

/// One SP run with an unbounded ring sink: the full NDJSON stream plus
/// the running fold.
fn eventful_run(ct: &CompiledTrace, cfg: CacheConfig, d: u32) -> (String, EventSummary) {
    let mut sink = RingSink::new(0, default_early_threshold(&cfg.latency));
    run_sp_with_compiled_ev(
        ct,
        cfg,
        SpParams::from_distance_rp(d, 0.5),
        EngineOptions::default(),
        &mut sink,
    )
    .expect("compiled for this geometry");
    (sink.to_ndjson(), sink.summary)
}

#[test]
fn event_streams_are_byte_identical_at_any_jobs_width() {
    let cfg = CacheConfig::scaled_default();
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let trace = Workload::tiny(b).trace();
        let ct = Arc::new(compile_trace(&trace, &cfg));
        let ds = grid(b);
        let expected: Vec<(String, EventSummary)> =
            ds.iter().map(|&d| eventful_run(&ct, cfg, d)).collect();
        assert!(
            expected.iter().all(|(nd, _)| !nd.is_empty()),
            "{b:?}: every distance must emit events"
        );
        for jobs in [2, 4] {
            let (got, _) = sp_core::map_jobs(ds.clone(), |d| eventful_run(&ct, cfg, d), jobs);
            // Byte-identical NDJSON and identical folds, per distance.
            assert_eq!(
                expected, got,
                "{b:?}: event stream diverged at --jobs {jobs}"
            );
        }
    }
}

#[test]
fn event_sweeps_are_identical_at_any_jobs_width() {
    let cfg = CacheConfig::scaled_default();
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let trace = Workload::tiny(b).trace();
        let ct = Arc::new(compile_trace(&trace, &cfg));
        let ds = grid(b);
        let (serial_sweep, serial_events, rep) =
            sweep_events_compiled_jobs_with(&ct, cfg, 0.5, &ds, EngineOptions::default(), 1)
                .expect("compiled for this geometry");
        assert_eq!(rep.jobs, ds.len() + 1, "baseline + one job per distance");
        for jobs in [2, 4] {
            let (sweep, events, _) =
                sweep_events_compiled_jobs_with(&ct, cfg, 0.5, &ds, EngineOptions::default(), jobs)
                    .expect("compiled for this geometry");
            assert_eq!(
                serial_sweep, sweep,
                "{b:?}: sweep diverged at --jobs {jobs}"
            );
            assert_eq!(
                serial_events, events,
                "{b:?}: event folds diverged at --jobs {jobs}"
            );
        }
    }
}
