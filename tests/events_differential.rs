//! Satellite differential suite: the event layer must be a *lossless
//! decomposition* of the aggregate counters. For each benchmark, the
//! fold of the emitted eviction-attribution events must equal the
//! simulator's own `PollutionStats` exactly, the lifecycle counts must
//! equal the prefetch counters, and attaching a sink must not perturb
//! the simulation at all (`RunResult` equality against the sink-free
//! path).

use sp_cachesim::{default_early_threshold, CacheConfig, RingSink, SummarySink};
use sp_core::prelude::*;
use sp_core::{
    compile_trace, run_original_passes_compiled, run_original_passes_compiled_ev,
    run_sp_with_compiled, run_sp_with_compiled_ev, EngineOptions,
};
use sp_workloads::{Benchmark, Workload};

/// Distances chosen to push past each tiny-scale bound so the pollution
/// cases actually fire where the workload allows it.
fn distances(b: Benchmark) -> Vec<u32> {
    match b {
        Benchmark::Em3d => vec![2, 16, 64],
        Benchmark::Mcf => vec![8, 128, 512],
        Benchmark::Mst => vec![3, 27, 81],
    }
}

#[test]
fn pollution_stats_equal_the_fold_of_eviction_events() {
    let cfg = CacheConfig::scaled_default(); // hardware prefetchers on
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let trace = Workload::tiny(b).trace();
        let ct = compile_trace(&trace, &cfg);
        for d in distances(b) {
            let params = SpParams::from_distance_rp(d, 0.5);
            let opts = EngineOptions::default();
            let plain = run_sp_with_compiled(&ct, cfg, params, opts).unwrap();
            let mut sink = SummarySink::new(default_early_threshold(&cfg.latency));
            let observed = run_sp_with_compiled_ev(&ct, cfg, params, opts, &mut sink).unwrap();
            // The sink must not perturb the simulation in any way.
            assert_eq!(plain, observed, "{b:?} d={d}: sink changed the run");
            let s = &sink.summary;
            // The differential checks: aggregate counters == event folds.
            assert_eq!(
                s.pollution_stats(),
                observed.stats.pollution,
                "{b:?} d={d}: pollution fold"
            );
            assert_eq!(
                s.issued, observed.stats.prefetches_issued,
                "{b:?} d={d}: issued fold"
            );
            assert_eq!(
                s.first_uses, observed.stats.prefetches_useful,
                "{b:?} d={d}: first-use fold"
            );
            // Timeliness partitions the resolved first uses.
            let resolved: u64 = s.late + s.on_time + s.early;
            assert_eq!(
                resolved,
                s.first_uses.iter().sum::<u64>(),
                "{b:?} d={d}: timeliness must partition first uses"
            );
            // Per-set fills sum to the run's L2 fills.
            let set_fills: u64 = s.per_set.values().map(|p| p.total_fills()).sum();
            assert_eq!(
                set_fills, observed.stats.l2_fills,
                "{b:?} d={d}: per-set fill fold"
            );
        }
    }
}

#[test]
fn original_runs_fold_consistently_too() {
    // No helper thread: only hardware prefetchers emit. The fold must
    // still match, and a bounded ring must keep the fold exact even
    // when it drops buffered events.
    let cfg = CacheConfig::scaled_default();
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let trace = Workload::tiny(b).trace();
        let ct = compile_trace(&trace, &cfg);
        let plain = run_original_passes_compiled(&ct, cfg, 2).unwrap();
        let mut sink = RingSink::new(16, default_early_threshold(&cfg.latency));
        let observed = run_original_passes_compiled_ev(&ct, cfg, 2, &mut sink).unwrap();
        assert_eq!(plain, observed, "{b:?}: sink changed the original run");
        assert!(sink.len() <= 16, "{b:?}: ring respects its bound");
        let s = &sink.summary;
        assert_eq!(s.pollution_stats(), observed.stats.pollution, "{b:?}");
        assert_eq!(s.issued, observed.stats.prefetches_issued, "{b:?}");
        assert_eq!(s.issued[0], 0, "{b:?}: no helper prefetches");
        assert_eq!(s.first_uses, observed.stats.prefetches_useful, "{b:?}");
    }
}
