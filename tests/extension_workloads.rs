//! Beyond the paper's trio: the SP pipeline applies unchanged to the
//! screened-in extension workloads (TreeAdd, Health) — the API is not
//! specialized to the three evaluated benchmarks.

use sp_prefetch::cachesim::{CacheConfig, CacheGeometry};
use sp_prefetch::core::prelude::*;
use sp_prefetch::workloads::{Health, HealthConfig, TreeAdd, TreeAddConfig};

fn cfg() -> CacheConfig {
    CacheConfig {
        l1: CacheGeometry::new(1024, 4, 64),
        l2: CacheGeometry::new(16 * 1024, 8, 64),
        ..CacheConfig::scaled_default()
    }
}

#[test]
fn treeadd_benefits_from_bounded_sp() {
    let tree = TreeAdd::build(TreeAddConfig {
        depth: 11,
        ..TreeAddConfig::tiny()
    });
    let trace = tree.trace();
    let rec = recommend_distance(&trace, &cfg());
    let bound = rec
        .max_distance
        .expect("2047-node tree overflows a 16KB L2");
    let base = run_original(&trace, cfg());
    let sp = run_sp(
        &trace,
        cfg(),
        SpParams::from_distance_rp((bound / 2).max(1), 0.5),
    );
    assert!(
        sp.runtime < base.runtime,
        "bounded SP must help TreeAdd: {} vs {}",
        sp.runtime,
        base.runtime
    );
    assert!(sp.stats.main.total_misses < base.stats.main.total_misses);
}

#[test]
fn health_benefits_from_bounded_sp() {
    let h = Health::build(HealthConfig {
        levels: 4,
        steps: 20,
        ..HealthConfig::tiny()
    });
    let trace = h.trace();
    let rec = recommend_distance(&trace, &cfg());
    let d = controlled_distance(16, &rec).max(1);
    let base = run_original(&trace, cfg());
    let sp = run_sp(&trace, cfg(), SpParams::from_distance_rp(d, 0.5));
    assert!(
        sp.stats.main.total_misses < base.stats.main.total_misses,
        "SP must cut Health's misses: {} vs {}",
        sp.stats.main.total_misses,
        base.stats.main.total_misses
    );
}

/// TreeAdd exposes the *other* regime of the paper's lateness/pollution
/// tradeoff: its single post-order traversal is a pure dependence chain,
/// so the helper is miss-bound at the same rate as the main thread and
/// physically cannot build a lead — prefetches arrive in flight (the
/// paper's "partially cache hits") instead of early, and pollution does
/// not grow with the configured distance. The distance bound is vacuous
/// here because the helper self-throttles.
#[test]
fn treeadd_is_lateness_bound_not_pollution_bound() {
    let tree = TreeAdd::build(TreeAddConfig {
        depth: 11,
        ..TreeAddConfig::tiny()
    });
    let trace = tree.trace();
    let rec = recommend_distance(&trace, &cfg());
    let bound = rec.max_distance.unwrap();
    let inside = run_sp(&trace, cfg(), SpParams::from_distance_rp(bound / 2, 0.5));
    let outside = run_sp(&trace, cfg(), SpParams::from_distance_rp(bound * 8, 0.5));
    // Main-thread would-be misses are absorbed in flight...
    assert!(
        outside.stats.main.partial_hits > outside.stats.main.total_misses,
        "partial hits must dominate: {} vs {}",
        outside.stats.main.partial_hits,
        outside.stats.main.total_misses
    );
    // ...and the chain-bound helper never gets far enough ahead for an
    // oversized distance to pollute any worse than an in-bound one —
    // beyond a negligible startup transient.
    assert_eq!(
        outside.stats.pollution.total(),
        inside.stats.pollution.total(),
        "pollution must not grow with distance"
    );
    assert!(
        outside.stats.pollution.total() <= 2,
        "a self-throttling helper cannot meaningfully pollute: {}",
        outside.stats.pollution.total()
    );
}
