//! Lane-vs-scalar differential: the batched engine must replay every
//! lane **bit-identically** to the scalar run of the same spec — full
//! `RunResult` (counters, per-set pressure, pollution) and the folded
//! event summary — at every lane width, for every learned-state
//! prefetcher backend, and at every `--jobs` fan-out of the batched
//! sweep. This is the contract that lets `--lanes` stay out of result
//! cache keys and lets the batched bench suite stand in for the scalar
//! one.

use sp_cachesim::events::{default_early_threshold, SummarySink};
use sp_cachesim::{CacheConfig, HwBackend};
use sp_core::{
    compile_trace, run_original_passes_compiled_ev, run_sp_with_compiled_ev, run_trace_batched_ev,
    sweep_distances_batched_jobs_with, sweep_distances_jobs_with, EngineOptions, LaneSpec,
    SpParams,
};
use sp_workloads::{Benchmark, Workload};

/// A spec grid mixing the baseline with distances below, around, and
/// above the tiny EM3D bound, cycled to the requested width.
fn specs(width: usize) -> Vec<LaneSpec> {
    let pool = [
        LaneSpec::Original,
        LaneSpec::Sp(SpParams::new(2, 2)),
        LaneSpec::Sp(SpParams::new(8, 8)),
        LaneSpec::Sp(SpParams::new(32, 32)),
        LaneSpec::Sp(SpParams::new(4, 12)),
        LaneSpec::Sp(SpParams::new(64, 64)),
        LaneSpec::Sp(SpParams::new(1, 3)),
        LaneSpec::Sp(SpParams::new(16, 48)),
    ];
    (0..width).map(|i| pool[i % pool.len()]).collect()
}

/// Run `specs` batched and scalar with event sinks attached and assert
/// every lane matches its scalar run bit for bit.
fn assert_lanes_match(cfg: CacheConfig, specs: &[LaneSpec], opts: EngineOptions, label: &str) {
    let trace = Workload::tiny(Benchmark::Em3d).trace();
    let ct = compile_trace(&trace, &cfg);
    let threshold = default_early_threshold(&cfg.latency);
    let mut sinks: Vec<SummarySink> = specs.iter().map(|_| SummarySink::new(threshold)).collect();
    let batched = run_trace_batched_ev(&ct, cfg, specs, opts, &mut sinks).unwrap();
    for (li, (spec, got)) in specs.iter().zip(&batched).enumerate() {
        let mut scalar_sink = SummarySink::new(threshold);
        let scalar = match spec {
            LaneSpec::Original => {
                run_original_passes_compiled_ev(&ct, cfg, opts.passes, &mut scalar_sink).unwrap()
            }
            LaneSpec::Sp(p) => {
                run_sp_with_compiled_ev(&ct, cfg, *p, opts, &mut scalar_sink).unwrap()
            }
        };
        assert_eq!(
            got,
            &scalar,
            "{label}: lane {li} ({spec:?}) of width {} diverged from its scalar run",
            specs.len()
        );
        assert_eq!(
            sinks[li].summary, scalar_sink.summary,
            "{label}: lane {li} ({spec:?}) event summary diverged"
        );
    }
}

#[test]
fn every_lane_width_replays_its_scalar_runs() {
    let cfg = CacheConfig::scaled_default();
    for width in [1, 2, 4, 8] {
        assert_lanes_match(cfg, &specs(width), EngineOptions::default(), "streamer+dpl");
    }
}

#[test]
fn learned_state_backends_stay_per_lane() {
    // Pointer-chase and perceptron carry the most learned state
    // (correlation tables / weight tables); a batched run must keep
    // each lane's tables as isolated as its cache lines.
    for backend in [HwBackend::PointerChase, HwBackend::Perceptron] {
        let cfg = CacheConfig::scaled_default().with_hw_backend(backend);
        for width in [2, 4, 8] {
            assert_lanes_match(cfg, &specs(width), EngineOptions::default(), backend.name());
        }
    }
}

#[test]
fn multi_pass_batched_runs_match_scalar() {
    let cfg = CacheConfig::scaled_default();
    let opts = EngineOptions {
        passes: 2,
        ..EngineOptions::default()
    };
    assert_lanes_match(cfg, &specs(4), opts, "two passes");
}

#[test]
fn batched_sweep_is_deterministic_across_jobs_and_lanes() {
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::tiny(Benchmark::Em3d).trace();
    let ds = [2u32, 5, 10, 20, 40];
    let opts = EngineOptions::default();
    let (reference, _) = sweep_distances_jobs_with(&trace, cfg, 0.5, &ds, opts, 1);
    for jobs in [1, 2, 4] {
        for lanes in [1, 2, 3, 4, 8] {
            let (sweep, rep) =
                sweep_distances_batched_jobs_with(&trace, cfg, 0.5, &ds, opts, jobs, lanes);
            assert_eq!(
                sweep, reference,
                "batched sweep at jobs={jobs} lanes={lanes} diverged from the scalar sweep"
            );
            if lanes > 1 {
                // Jobs schedule lane-batches, not single points: the
                // 6-point grid (baseline + 5 distances) packs into
                // ceil(6/lanes) submissions.
                assert_eq!(rep.jobs, 6usize.div_ceil(lanes), "lanes={lanes}");
            }
        }
    }
}
