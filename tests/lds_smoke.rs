//! Satellite smoke suite for the LDS workload frontier: every
//! linked-data-structure kernel must run under every hardware-prefetcher
//! backend at tiny scale, the selected backend must actually issue
//! prefetches under its own entity class (and *only* its own class),
//! and the event fold must equal the simulator's counters exactly —
//! the same lossless-decomposition contract the original trio obeys.
//! CI runs this file release-mode as the `lds-smoke` step.

use sp_cachesim::stats::prefetch_class;
use sp_cachesim::{default_early_threshold, CacheConfig, Entity, HwBackend, SummarySink};
use sp_core::prelude::*;
use sp_core::{compile_trace, run_sp_with_compiled, run_sp_with_compiled_ev, EngineOptions};
use sp_workloads::{KernelKind, ScaleTier, WorkloadBuilder};

/// The prefetch-class indices a backend is allowed to emit under.
fn active_classes(backend: HwBackend) -> Vec<usize> {
    let stream = prefetch_class(Entity::HwStream(0)).unwrap();
    let dpl = prefetch_class(Entity::HwDpl(0)).unwrap();
    let pchase = prefetch_class(Entity::HwPchase(0)).unwrap();
    let perceptron = prefetch_class(Entity::HwPerceptron(0)).unwrap();
    match backend {
        HwBackend::StreamerDpl => vec![stream, dpl],
        HwBackend::Streamer => vec![stream],
        HwBackend::Dpl => vec![dpl],
        HwBackend::PointerChase => vec![pchase],
        HwBackend::Perceptron => vec![perceptron],
    }
}

/// All hardware prefetch classes (everything except the helper's 0).
fn hw_classes() -> Vec<usize> {
    [
        Entity::HwStream(0),
        Entity::HwDpl(0),
        Entity::HwPchase(0),
        Entity::HwPerceptron(0),
    ]
    .iter()
    .map(|&e| prefetch_class(e).unwrap())
    .collect()
}

/// 4 LDS kernels x every backend: nonzero activity in the backend's own
/// class, zero in every other hardware class, and an exact event fold.
#[test]
fn every_lds_kernel_runs_under_every_backend() {
    for kind in KernelKind::LDS {
        let trace = WorkloadBuilder::new(kind).tier(ScaleTier::Tiny).trace();
        for backend in HwBackend::ALL {
            let cfg = CacheConfig::scaled_default().with_hw_backend(backend);
            let ct = compile_trace(&trace, &cfg);
            let params = SpParams::from_distance_rp(8, 0.5);
            let opts = EngineOptions::default();
            let plain = run_sp_with_compiled(&ct, cfg, params, opts).unwrap();
            let mut sink = SummarySink::new(default_early_threshold(&cfg.latency));
            let observed = run_sp_with_compiled_ev(&ct, cfg, params, opts, &mut sink).unwrap();
            let ctx = format!("{} under {}", kind.name(), backend.name());

            // The sink must not perturb the simulation.
            assert_eq!(plain, observed, "{ctx}: sink changed the run");

            // Backend exclusivity: only the selected backend's class may
            // issue; every other hardware class must stay silent.
            let issued = &observed.stats.prefetches_issued;
            let active = active_classes(backend);
            let active_total: u64 = active.iter().map(|&c| issued[c]).sum();
            assert!(active_total > 0, "{ctx}: backend issued no prefetches");
            for c in hw_classes() {
                if !active.contains(&c) {
                    assert_eq!(issued[c], 0, "{ctx}: class {c} issued while inactive");
                }
            }

            // Events <-> counter self-check: the fold is lossless.
            let s = &sink.summary;
            assert_eq!(s.issued, observed.stats.prefetches_issued, "{ctx}: issued");
            assert_eq!(
                s.first_uses, observed.stats.prefetches_useful,
                "{ctx}: first uses"
            );
            assert_eq!(
                s.pollution_stats(),
                observed.stats.pollution,
                "{ctx}: pollution"
            );
            let resolved = s.late + s.on_time + s.early;
            assert_eq!(
                resolved,
                s.first_uses.iter().sum::<u64>(),
                "{ctx}: timeliness must partition first uses"
            );
        }
    }
}

/// Building the same LDS kernel twice must produce byte-identical
/// traces — the builder is a pure function of (kind, tier, seed).
#[test]
fn lds_traces_are_byte_identical_across_builds() {
    for kind in KernelKind::LDS {
        let a = WorkloadBuilder::new(kind).tier(ScaleTier::Tiny).trace();
        let b = WorkloadBuilder::new(kind).tier(ScaleTier::Tiny).trace();
        assert_eq!(
            sp_trace::codec::digest(&a),
            sp_trace::codec::digest(&b),
            "{}: tiny trace digest unstable",
            kind.name()
        );
        // A different seed must actually change the workload — the
        // digest would hide a builder that ignores its seed.
        let c = WorkloadBuilder::new(kind)
            .tier(ScaleTier::Tiny)
            .seed(99)
            .trace();
        assert_ne!(
            sp_trace::codec::digest(&a),
            sp_trace::codec::digest(&c),
            "{}: seed is ignored",
            kind.name()
        );
    }
}

/// The affinity pipeline (set-affinity report, distance bound) applies
/// to the LDS kernels unchanged: each tiny-scale kernel overflows the
/// scaled L2 enough to produce a finite bound.
#[test]
fn lds_kernels_flow_through_the_affinity_pipeline() {
    let cfg = CacheConfig::scaled_default();
    for kind in KernelKind::LDS {
        let trace = WorkloadBuilder::new(kind).tier(ScaleTier::Tiny).trace();
        let rec = recommend_distance(&trace, &cfg);
        let bound = rec.max_distance;
        let d = controlled_distance(64, &rec).max(1);
        let sp = run_sp(&trace, cfg, SpParams::from_distance_rp(d, 0.5));
        assert!(
            sp.stats.main.memory_accesses() > 0,
            "{}: empty run (bound {bound:?})",
            kind.name()
        );
    }
}
