//! Cross-crate integration: the native (real-thread, `_mm_prefetch`)
//! execution path agrees with the plain kernels, under parameters derived
//! from the simulated pipeline.

use sp_prefetch::cachesim::CacheConfig;
use sp_prefetch::core::prelude::*;
use sp_prefetch::native::{run_em3d_native, run_mcf_native, run_mst_native};
use sp_prefetch::workloads::{Em3d, Em3dConfig, Mcf, McfConfig, Mst, MstConfig};

/// Derive SP parameters for the native run the same way the simulator
/// pipeline does: Set Affinity bound from the trace, RP from CALR.
fn derived_params(trace: &sp_prefetch::trace::HotLoopTrace, cfg: &CacheConfig) -> SpParams {
    let rec = recommend_distance(trace, cfg);
    let d = controlled_distance(32, &rec).max(1);
    SpParams::from_distance_rp(d, 0.5)
}

#[test]
fn em3d_native_with_pipeline_derived_params() {
    let cfg = CacheConfig::scaled_default();
    let wl_cfg = Em3dConfig::tiny();
    let graph = Em3d::build(wl_cfg);
    let params = derived_params(&graph.trace(), &cfg);
    let mut a = Em3d::build(wl_cfg);
    let mut b = Em3d::build(wl_cfg);
    let base = run_em3d_native(&mut a, None, 4);
    let sp = run_em3d_native(&mut b, Some(params), 4);
    assert_eq!(base.checksum, sp.checksum);
    assert!(sp.helper_covered > 0);
}

#[test]
fn mcf_native_with_pipeline_derived_params() {
    let cfg = CacheConfig::scaled_default();
    let m = Mcf::build(McfConfig::tiny());
    let params = derived_params(&m.trace(), &cfg);
    let base = run_mcf_native(&m, None, 4);
    let sp = run_mcf_native(&m, Some(params), 4);
    assert_eq!(base.checksum, sp.checksum);
}

#[test]
fn mst_native_prefetching_preserves_the_tree() {
    let m = Mst::build(MstConfig::tiny());
    let base = run_mst_native(&m, None);
    let sp = run_mst_native(&m, Some(SpParams::new(2, 2)));
    assert_eq!(base.checksum, sp.checksum);
    assert_eq!(base.checksum, m.mst_weight_native() as f64);
}

#[test]
fn native_reports_are_internally_consistent() {
    let mut g = Em3d::build(Em3dConfig::tiny());
    let r = run_em3d_native(&mut g, Some(SpParams::new(4, 4)), 2);
    // The helper can cover at most RP of all iterations across passes.
    let total_iters = (g.config().nodes * 2) as u64;
    assert!(r.helper_covered <= total_iters);
    assert!(r.elapsed.as_nanos() > 0);
}
