//! Observability differential, mirroring `events_differential.rs` for
//! the tracing layer: enabling the span recorder must not perturb
//! simulation results in any way (bit-exact `Sweep` equality against
//! the recording-disabled path), disabling it again must leave nothing
//! behind in the collector, and the `NullSubscriber` path must compile
//! the span layer out while still running the observed closure.
//!
//! One `#[test]` on purpose: recording and the collector are
//! process-global, so concurrent tests in this binary would steal each
//! other's spans.

use sp_cachesim::CacheConfig;
use sp_core::{compile_trace, sweep_compiled_jobs_with, EngineOptions};
use sp_obs::Subscriber;
use sp_workloads::{Benchmark, Workload};
use std::sync::Arc;

#[test]
fn recording_does_not_perturb_sweep_results() {
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::tiny(Benchmark::Em3d).trace();
    let ct = Arc::new(compile_trace(&trace, &cfg));
    let ds = [2u32, 8, 32];
    let opts = EngineOptions::default();

    // Reference run: recording disabled (the default build mode).
    let (off, _) = sweep_compiled_jobs_with(&ct, cfg, 0.5, &ds, opts, 2).unwrap();

    // Same sweep with the recorder on and a correlation ID in scope.
    sp_obs::span::start_recording();
    let corr = sp_obs::CorrId::next_root();
    let (on, _) = {
        let _cg = sp_obs::corr::set_current(corr);
        sweep_compiled_jobs_with(&ct, cfg, 0.5, &ds, opts, 2).unwrap()
    };
    let spans = sp_obs::span::drain();
    sp_obs::span::stop_recording();

    assert_eq!(off, on, "recording spans changed the simulation");
    assert!(!spans.is_empty(), "recording captured no spans");
    assert!(
        spans.iter().any(|s| s.name == "simulate"),
        "simulate spans missing: {:?}",
        spans.iter().map(|s| s.name).collect::<Vec<_>>()
    );

    // Disabled again: identical results, and nothing reaches the
    // collector.
    let (again, _) = sweep_compiled_jobs_with(&ct, cfg, 0.5, &ds, opts, 2).unwrap();
    assert_eq!(off, again, "post-recording run drifted");
    assert!(
        sp_obs::span::drain().is_empty(),
        "spans recorded while disabled"
    );

    // The NullSubscriber monomorphizes the span away entirely but still
    // runs the closure (same contract as `events::NullSink`).
    const _: () = assert!(!<sp_obs::NullSubscriber as Subscriber>::ENABLED);
    let out = sp_obs::span::observed(sp_obs::NullSubscriber, "noop", || 41 + 1);
    assert_eq!(out, 42);
    assert!(sp_obs::span::drain().is_empty());
}
