//! Paper-shape assertions at the default scaled configuration — the
//! qualitative criteria of DESIGN.md §4 that define a successful
//! reproduction. These use the same workload/cache presets as the
//! `reproduce` binary, with reduced sweep grids to stay test-fast.

use sp_prefetch::cachesim::CacheConfig;
use sp_prefetch::core::prelude::*;
use sp_prefetch::workloads::{Benchmark, Workload};

fn cfg() -> CacheConfig {
    CacheConfig::scaled_default()
}

/// Table 2 shape: EM3D's Set Affinity is far below MCF's and MST's, so
/// its tolerated prefetch distance is far smaller.
#[test]
fn table2_affinity_ordering() {
    let min_sa = |b: Benchmark| {
        let trace = Workload::scaled(b).trace();
        recommend_distance(&trace, &cfg())
            .affinity
            .min()
            .expect("overflow")
    };
    let (em3d, mcf, mst) = (
        min_sa(Benchmark::Em3d),
        min_sa(Benchmark::Mcf),
        min_sa(Benchmark::Mst),
    );
    assert!(em3d * 4 < mcf, "EM3D {em3d} vs MCF {mcf}");
    assert!(em3d * 4 < mst, "EM3D {em3d} vs MST {mst}");
}

/// Figure 2 shape: EM3D's normalized runtime, memory accesses, and hot
/// misses all rise as the prefetch distance grows past the bound.
#[test]
fn fig2_curves_rise_with_distance() {
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let rec = recommend_distance(&trace, &cfg());
    let bound = rec.max_distance.unwrap();
    let sweep = sweep_distances(&trace, cfg(), 0.5, &[bound / 2, bound * 4]);
    let (inside, outside) = (&sweep.points[0], &sweep.points[1]);
    assert!(
        outside.runtime_norm > inside.runtime_norm + 0.05,
        "runtime must rise"
    );
    assert!(
        outside.memory_accesses_norm > inside.memory_accesses_norm,
        "accesses must rise"
    );
    assert!(
        outside.hot_misses_norm > inside.hot_misses_norm,
        "misses must rise"
    );
}

/// Figure 4 shape: SP on EM3D eliminates a large share of totally misses
/// at a bounded distance; an oversized distance erodes totally hits.
#[test]
fn fig4_em3d_behavior_shape() {
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let rec = recommend_distance(&trace, &cfg());
    let bound = rec.max_distance.unwrap();
    let sweep = sweep_distances(&trace, cfg(), 0.5, &[bound / 2, bound * 4]);
    let inside = &sweep.points[0];
    let outside = &sweep.points[1];
    // Large miss elimination inside the bound (paper: up to 41%).
    assert!(
        inside.behavior.totally_miss_pct < -25.0,
        "in-bound SP must eliminate a large share of misses, got {:+.1}%",
        inside.behavior.totally_miss_pct
    );
    // Totally hits fall as distance grows (the pollution signature).
    assert!(
        outside.behavior.totally_hit_pct < inside.behavior.totally_hit_pct,
        "totally hits must fall with distance: {:+.1}% -> {:+.1}%",
        inside.behavior.totally_hit_pct,
        outside.behavior.totally_hit_pct
    );
    // And the pollution counters confirm the mechanism.
    assert!(outside.pollution.stats.total() > inside.pollution.stats.total());
}

/// Figure 5/6 shape: MCF and MST tolerate far larger distances than
/// EM3D — their runtime at EM3D-breaking distances is still good.
#[test]
fn fig56_mcf_mst_less_sensitive_than_em3d() {
    let degradation_at = |b: Benchmark, d: u32| {
        let trace = Workload::scaled(b).trace();
        let sweep = sweep_distances(&trace, cfg(), 0.5, &[d]);
        sweep.points[0].runtime_norm
    };
    // Distance 320 wrecks EM3D (~1.0, no gain) but MCF and MST still win.
    let em3d = degradation_at(Benchmark::Em3d, 320);
    let mcf = degradation_at(Benchmark::Mcf, 320);
    let mst = degradation_at(Benchmark::Mst, 320);
    assert!(
        em3d > 0.95,
        "EM3D at 320 must have lost its gain, got {em3d:.3}"
    );
    assert!(mcf < 0.9, "MCF at 320 must still win, got {mcf:.3}");
    assert!(mst < 0.9, "MST at 320 must still win, got {mst:.3}");
}

/// The headline claim: controlling the distance to the Set-Affinity
/// bound preserves SP's speedup on every benchmark.
#[test]
fn bounded_distance_preserves_speedup_everywhere() {
    for b in Benchmark::ALL {
        let trace = Workload::scaled(b).trace();
        let rec = recommend_distance(&trace, &cfg());
        let bound = rec.max_distance.unwrap();
        let d = controlled_distance(bound / 2, &rec);
        let sweep = sweep_distances(&trace, cfg(), 0.5, &[d]);
        let p = &sweep.points[0];
        assert!(
            p.runtime_norm < 0.9,
            "{}: bounded SP must beat the original, got {:.3}",
            b.name(),
            p.runtime_norm
        );
    }
}
