//! Satellite regression suite: the `sp_runner` fan-out must be a pure
//! scheduling optimisation. For each selected benchmark the full
//! `RunResult` vector produced by a parallel distance sweep (`--jobs 2`
//! and `--jobs 4`) must *exactly* equal the serial one (`--jobs 1`) —
//! not "statistically close": the simulations are pure functions of
//! their inputs and the runner reassembles results in submission order,
//! so any divergence is a bug.

use sp_cachesim::{CacheConfig, HwBackend};
use sp_core::prelude::*;
use sp_core::sweep_distances_jobs;
use sp_workloads::{Benchmark, KernelKind, ScaleTier, Workload, WorkloadBuilder};

fn grid(b: Benchmark) -> Vec<u32> {
    // Small per-benchmark grids spanning below/above each tiny-scale
    // bound — enough points to give every worker several jobs.
    match b {
        Benchmark::Em3d => vec![1, 2, 4, 8, 16, 32],
        Benchmark::Mcf => vec![2, 8, 32, 128, 512],
        Benchmark::Mst => vec![1, 3, 9, 27, 81],
    }
}

fn sweeps_identical(b: Benchmark) {
    let cfg = sp_cachesim::CacheConfig::scaled_default();
    let trace = Workload::tiny(b).trace();
    let ds = grid(b);
    let (serial, rep1) = sweep_distances_jobs(&trace, cfg, 0.5, &ds, 1);
    assert_eq!(rep1.jobs, ds.len() + 1, "baseline + one job per distance");
    assert_eq!(rep1.workers, 1);
    for jobs in [2, 4] {
        let (parallel, rep) = sweep_distances_jobs(&trace, cfg, 0.5, &ds, jobs);
        assert_eq!(rep.jobs, ds.len() + 1);
        // Full structural equality: baseline RunResult, and per-point
        // distance, normalized metrics, behaviour deltas and pollution.
        assert_eq!(
            serial, parallel,
            "{b:?}: sweep at --jobs {jobs} diverged from serial"
        );
    }
}

#[test]
fn em3d_parallel_sweep_equals_serial() {
    sweeps_identical(Benchmark::Em3d);
}

#[test]
fn mcf_parallel_sweep_equals_serial() {
    sweeps_identical(Benchmark::Mcf);
}

#[test]
fn mst_parallel_sweep_equals_serial() {
    sweeps_identical(Benchmark::Mst);
}

/// The LDS frontier obeys the same contract: for every
/// linked-data-structure kernel, under each of the *learned-state*
/// backends (the ones with cross-access history most likely to betray
/// a scheduling dependence), the parallel sweep must equal the serial
/// one exactly — and the trace handed to every width must be the same
/// bytes (builder digest equality).
#[test]
fn lds_parallel_sweeps_equal_serial_under_new_backends() {
    for kind in KernelKind::LDS {
        let trace = WorkloadBuilder::new(kind).tier(ScaleTier::Tiny).trace();
        assert_eq!(
            sp_trace::codec::digest(&trace),
            sp_trace::codec::digest(&WorkloadBuilder::new(kind).tier(ScaleTier::Tiny).trace()),
            "{}: builder digest unstable",
            kind.name()
        );
        for backend in [HwBackend::PointerChase, HwBackend::Perceptron] {
            let cfg = CacheConfig::scaled_default().with_hw_backend(backend);
            let ds = vec![2, 4, 8, 16, 32];
            let (serial, _) = sweep_distances_jobs(&trace, cfg, 0.5, &ds, 1);
            for jobs in [2, 4] {
                let (parallel, _) = sweep_distances_jobs(&trace, cfg, 0.5, &ds, jobs);
                assert_eq!(
                    serial,
                    parallel,
                    "{} under {}: --jobs {jobs} diverged from serial",
                    kind.name(),
                    backend.name()
                );
            }
        }
    }
}

/// The raw `RunResult`s (not just the normalized sweep) must match too:
/// run the same distance grid through the runner as independent jobs
/// and compare against direct serial calls.
#[test]
fn raw_run_results_equal_serial_at_any_width() {
    let cfg = sp_cachesim::CacheConfig::scaled_default();
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let trace = Workload::tiny(b).trace();
        let expected: Vec<RunResult> = grid(b)
            .iter()
            .map(|&d| run_sp(&trace, cfg, SpParams::from_distance_rp(d, 0.5)))
            .collect();
        for jobs in [1, 2, 4] {
            let (got, _) = sp_core::map_jobs(
                grid(b),
                |d| run_sp(&trace, cfg, SpParams::from_distance_rp(d, 0.5)),
                jobs,
            );
            assert_eq!(expected, got, "{b:?} at --jobs {jobs}");
        }
    }
}
