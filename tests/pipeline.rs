//! End-to-end pipeline tests: workload -> trace -> profiling -> Set
//! Affinity -> distance bound -> co-simulation, across crates.

use sp_prefetch::cachesim::{CacheConfig, CacheGeometry};
use sp_prefetch::core::prelude::*;
use sp_prefetch::profiler::{detect_phases, rank_delinquent_loads, PhaseConfig};
use sp_prefetch::workloads::{Benchmark, Workload};

/// A small cache so the tiny workloads still pressure the sets.
fn test_cfg() -> CacheConfig {
    CacheConfig {
        l1: CacheGeometry::new(1024, 4, 64),
        l2: CacheGeometry::new(16 * 1024, 8, 64),
        ..CacheConfig::scaled_default()
    }
}

#[test]
fn full_pipeline_runs_for_every_benchmark() {
    let cfg = test_cfg();
    for b in Benchmark::ALL {
        let w = Workload::tiny(b);
        let trace = w.trace();

        // Profiling stages all accept the trace.
        let phases = detect_phases(&trace, PhaseConfig::default());
        assert!(!phases.is_empty(), "{}: phases", b.name());
        let ranked = rank_delinquent_loads(&trace, cfg.l2, cfg.policy);
        assert!(!ranked.is_empty(), "{}: delinquent ranking", b.name());

        // Distance bound and a bounded SP run.
        let rec = recommend_distance(&trace, &cfg);
        let d = controlled_distance(1_000_000, &rec);
        let params = SpParams::from_distance_rp(d.min(64), 0.5);
        let baseline = run_original(&trace, cfg);
        let sp = run_sp(&trace, cfg, params);
        assert_eq!(
            sp.stats.main.demand_accesses(),
            baseline.stats.main.demand_accesses(),
            "{}: the main thread must execute identical references",
            b.name()
        );
        assert!(
            sp.stats.prefetches_issued[0] > 0,
            "{}: helper must prefetch",
            b.name()
        );
    }
}

#[test]
fn main_thread_hit_classes_partition_accesses() {
    let cfg = test_cfg();
    for b in Benchmark::ALL {
        let w = Workload::tiny(b);
        let trace = w.trace();
        let r = run_original(&trace, cfg);
        let s = &r.stats.main;
        assert_eq!(
            s.l1_hits + s.total_hits + s.partial_hits + s.total_misses,
            trace.total_refs() as u64,
            "{}",
            b.name()
        );
    }
}

#[test]
fn sp_within_bound_beats_oversized_distance() {
    let cfg = test_cfg();
    // EM3D at tiny scale still has enough set pressure on the 16KB L2.
    let w = Workload::tiny(Benchmark::Em3d);
    let trace = w.trace();
    let rec = recommend_distance(&trace, &cfg);
    let bound = rec.max_distance.expect("tiny EM3D overflows a 16KB L2");
    let inside = run_sp(
        &trace,
        cfg,
        SpParams::from_distance_rp((bound / 2).max(1), 0.5),
    );
    let outside = run_sp(&trace, cfg, SpParams::from_distance_rp(bound * 8, 0.5));
    assert!(
        inside.runtime < outside.runtime,
        "bounded distance must win: {} vs {}",
        inside.runtime,
        outside.runtime
    );
    assert!(
        inside.stats.main.total_misses <= outside.stats.main.total_misses,
        "bounded distance must not miss more"
    );
}

#[test]
fn helper_set_affinity_is_at_most_original() {
    let cfg = test_cfg();
    for b in Benchmark::ALL {
        let trace = Workload::tiny(b).trace();
        let orig = original_set_affinity(&trace, cfg.l2);
        let helper = helper_set_affinity(&trace, cfg.l2, SpParams::new(8, 8));
        for (set, sa_h) in &helper.per_set {
            if let Some(sa_o) = orig.per_set.get(set) {
                assert!(
                    sa_h <= sa_o,
                    "{}: set {set}: helper SA {sa_h} > original {sa_o}",
                    b.name()
                );
            }
        }
    }
}

#[test]
fn pollution_grows_with_distance() {
    let cfg = test_cfg();
    let trace = Workload::tiny(Benchmark::Em3d).trace();
    let small = run_sp(&trace, cfg, SpParams::new(2, 2));
    let large = run_sp(&trace, cfg, SpParams::new(64, 64));
    assert!(
        large.stats.pollution.total() > small.stats.pollution.total(),
        "distance 64 must pollute more than 2: {} vs {}",
        large.stats.pollution.total(),
        small.stats.pollution.total()
    );
}

#[test]
fn cross_crate_determinism() {
    let cfg = test_cfg();
    let t1 = Workload::tiny(Benchmark::Mcf).trace();
    let t2 = Workload::tiny(Benchmark::Mcf).trace();
    let r1 = run_sp(&t1, cfg, SpParams::new(4, 4));
    let r2 = run_sp(&t2, cfg, SpParams::new(4, 4));
    assert_eq!(r1, r2);
}
