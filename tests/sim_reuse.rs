//! Pins the allocation-reuse contract: repeated jobs=1 sweeps must not
//! rebuild the simulator. `sim_build_count` is a process-global, so this
//! lives in its own integration binary — other tests in the same process
//! would perturb the counter.

use sp_cachesim::{sim_build_count, CacheConfig};
use sp_core::{sweep_distances_batched_jobs_with, sweep_distances_jobs, EngineOptions};
use sp_workloads::{Benchmark, Workload};

#[test]
fn jobs1_sweeps_reuse_one_parked_simulator() {
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::tiny(Benchmark::Em3d).trace();
    let distances = [2u32, 8, 32];

    // First sweep may build the thread-local parked simulator.
    sweep_distances_jobs(&trace, cfg, 0.5, &distances, 1);
    let after_first = sim_build_count();
    assert!(after_first >= 1, "first sweep should build a simulator");

    // Every subsequent same-geometry sweep must reuse it — zero builds,
    // regardless of distance grid or workload.
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let t = Workload::tiny(b).trace();
        sweep_distances_jobs(&t, cfg, 0.5, &[4, 16, 64, 256], 1);
    }
    assert_eq!(
        sim_build_count(),
        after_first,
        "jobs=1 sweeps must reuse the parked simulator instead of rebuilding"
    );
}

#[test]
fn batched_sweeps_reuse_parked_lane_batches() {
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::tiny(Benchmark::Em3d).trace();
    let opts = EngineOptions::default();
    let distances = [2u32, 8, 32, 64, 128]; // 6 grid points with baseline

    // The first batched sweep may build its lane-batch shapes: one full
    // 4-lane batch plus the ragged 2-lane remainder.
    sweep_distances_batched_jobs_with(&trace, cfg, 0.5, &distances, opts, 1, 4);
    let after_first = sim_build_count();
    assert!(after_first >= 1, "first batched sweep should build");

    // Repeated batched sweeps of the same shape — across passes and
    // workloads — must run entirely on the parked batches: zero builds.
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let t = Workload::tiny(b).trace();
        sweep_distances_batched_jobs_with(&t, cfg, 0.5, &distances, opts, 1, 4);
    }
    assert_eq!(
        sim_build_count(),
        after_first,
        "batched sweeps must reuse parked lane-batch simulators"
    );

    // A different lane width is a different shape: it may build once,
    // then must park and reuse as well.
    sweep_distances_batched_jobs_with(&trace, cfg, 0.5, &distances, opts, 1, 3);
    let after_resize = sim_build_count();
    sweep_distances_batched_jobs_with(&trace, cfg, 0.5, &distances, opts, 1, 3);
    assert_eq!(
        sim_build_count(),
        after_resize,
        "re-running at the same lane width must not rebuild"
    );
}
