//! Pins the allocation-reuse contract: repeated jobs=1 sweeps must not
//! rebuild the simulator. `sim_build_count` is a process-global, so this
//! lives in its own integration binary — other tests in the same process
//! would perturb the counter.

use sp_cachesim::{sim_build_count, CacheConfig};
use sp_core::sweep_distances_jobs;
use sp_workloads::{Benchmark, Workload};

#[test]
fn jobs1_sweeps_reuse_one_parked_simulator() {
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::tiny(Benchmark::Em3d).trace();
    let distances = [2u32, 8, 32];

    // First sweep may build the thread-local parked simulator.
    sweep_distances_jobs(&trace, cfg, 0.5, &distances, 1);
    let after_first = sim_build_count();
    assert!(after_first >= 1, "first sweep should build a simulator");

    // Every subsequent same-geometry sweep must reuse it — zero builds,
    // regardless of distance grid or workload.
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let t = Workload::tiny(b).trace();
        sweep_distances_jobs(&t, cfg, 0.5, &[4, 16, 64, 256], 1);
    }
    assert_eq!(
        sim_build_count(),
        after_first,
        "jobs=1 sweeps must reuse the parked simulator instead of rebuilding"
    );
}
