//! Chrome trace-event export, end to end: run a real (tiny) traced
//! sweep, export the recorded spans with `sp_obs::chrome::trace_json`,
//! and validate the document against the trace-event schema with the
//! workspace's own JSON parser — the same check Perfetto's importer
//! effectively performs.
//!
//! One `#[test]` on purpose: recording and the collector are
//! process-global, so concurrent tests in this binary would steal each
//! other's spans.

use sp_cachesim::CacheConfig;
use sp_core::{compile_trace, sweep_compiled_jobs_with, EngineOptions};
use sp_serve::Json;
use sp_workloads::{Benchmark, Workload};
use std::collections::HashMap;
use std::sync::Arc;

#[test]
fn export_is_valid_trace_event_json_with_correlated_pipeline() {
    // Record the full pipeline the way `spt trace` does: load, compile,
    // sweep (simulate + fold per point), all under one correlation root.
    sp_obs::span::start_recording();
    let corr = sp_obs::CorrId::next_root();
    let cfg = CacheConfig::scaled_default();
    {
        let _cg = sp_obs::corr::set_current(corr);
        let trace = {
            let _sp = sp_obs::span!("load");
            Workload::tiny(Benchmark::Em3d).trace()
        };
        let ct = Arc::new(compile_trace(&trace, &cfg));
        let _ =
            sweep_compiled_jobs_with(&ct, cfg, 0.5, &[2, 8], EngineOptions::default(), 2).unwrap();
    }
    let spans = sp_obs::span::drain();
    sp_obs::span::stop_recording();

    let doc = sp_obs::chrome::trace_json(&spans);
    let v = Json::parse(&doc).expect("export parses as JSON");

    assert_eq!(
        v.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms"),
        "{doc}"
    );
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len(), "one event per span");

    // Every event is a complete event with the mandatory fields, and
    // every instrumented span carries the sweep's correlation root.
    let mut id_to_name: HashMap<String, String> = HashMap::new();
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"), "{e:?}");
        assert_eq!(e.get("cat").and_then(Json::as_str), Some("sp"), "{e:?}");
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(1), "{e:?}");
        assert!(e.get("tid").and_then(Json::as_u64).is_some(), "{e:?}");
        assert!(e.get("ts").and_then(Json::as_u64).is_some(), "{e:?}");
        assert!(e.get("dur").and_then(Json::as_u64).is_some(), "{e:?}");
        let name = e.get("name").and_then(Json::as_str).unwrap().to_string();
        let args = e.get("args").expect("args object");
        // Every pipeline stage carries the sweep's correlation root (the
        // runner's generic "job" grouping span predates the per-point ID
        // and legitimately has none).
        let root = args.get("corr_root").and_then(Json::as_str);
        if let Some(root) = root {
            assert_eq!(root, corr.root_tag(), "{name}: foreign root: {e:?}");
        }
        if ["load", "compile", "sweep", "point", "simulate", "fold"].contains(&name.as_str()) {
            assert!(root.is_some(), "{name}: missing correlation root: {e:?}");
        }
        let span = args.get("span").and_then(Json::as_str).unwrap();
        id_to_name.insert(span.to_string(), name);
    }

    // The whole pipeline is present…
    let names: Vec<&str> = id_to_name.values().map(String::as_str).collect();
    for stage in ["load", "compile", "sweep", "point", "simulate", "fold"] {
        assert!(names.contains(&stage), "missing {stage}: {names:?}");
    }
    // …and nested: every fold hangs off a simulate span.
    let folds = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("fold"));
    for e in folds {
        let parent = e
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(Json::as_str)
            .expect("fold has a parent");
        assert_eq!(
            id_to_name.get(parent).map(String::as_str),
            Some("simulate"),
            "{e:?}"
        );
    }
}
