//! Span-tree determinism across `--jobs` widths: the same sweep run
//! serially and on four workers must record the same tree — same span
//! names, same nesting, same per-point correlation sub-indices — with
//! only the volatile parts (span IDs, timestamps, thread IDs, which
//! worker ran which point) differing.
//!
//! One `#[test]` on purpose: recording and the collector are
//! process-global, so concurrent tests in this binary would steal each
//! other's spans.

use sp_cachesim::CacheConfig;
use sp_core::{compile_trace, sweep_compiled_jobs_with, EngineOptions};
use sp_trace::CompiledTrace;
use sp_workloads::{Benchmark, Workload};
use std::collections::HashMap;
use std::sync::Arc;

/// The normalized span tree: one `(name, corr_sub, parent_name)` row
/// per span, sorted. Span IDs are process-global and timestamps are
/// wall-clock, so identity is by name; the parent of a "job" span is
/// normalized away because it is the one structural difference between
/// widths (serial jobs nest under the sweep span, parallel jobs are
/// worker-thread roots).
fn tree(ct: &Arc<CompiledTrace>, cfg: CacheConfig, jobs: usize) -> Vec<(String, u32, String)> {
    sp_obs::span::start_recording();
    let corr = sp_obs::CorrId::next_root();
    {
        let _cg = sp_obs::corr::set_current(corr);
        let _ = sweep_compiled_jobs_with(ct, cfg, 0.5, &[2, 8, 32], EngineOptions::default(), jobs)
            .unwrap();
    }
    let spans = sp_obs::span::drain();
    sp_obs::span::stop_recording();

    let names: HashMap<u64, &'static str> = spans.iter().map(|s| (s.id, s.name)).collect();
    let mut rows: Vec<(String, u32, String)> = spans
        .iter()
        .map(|s| {
            let parent = if s.name == "job" {
                "-"
            } else {
                names.get(&s.parent).copied().unwrap_or("-")
            };
            (
                s.name.to_string(),
                s.corr.map(|c| c.sub()).unwrap_or(0),
                parent.to_string(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn span_tree_is_identical_across_jobs_widths() {
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::tiny(Benchmark::Em3d).trace();
    let ct = Arc::new(compile_trace(&trace, &cfg));

    let serial = tree(&ct, cfg, 1);
    let parallel = tree(&ct, cfg, 4);
    assert_eq!(serial, parallel, "span tree depends on --jobs width");

    // Shape checks on the tree itself: one sweep span, a baseline plus
    // one point per distance (correlation children 1..=4), and every
    // point's simulate nested under it.
    let count = |name: &str| serial.iter().filter(|(n, _, _)| n == name).count();
    assert_eq!(count("sweep"), 1, "{serial:?}");
    assert_eq!(count("point"), 4, "baseline + 3 distances: {serial:?}");
    assert_eq!(count("simulate"), 4, "{serial:?}");
    let subs: Vec<u32> = serial
        .iter()
        .filter(|(n, _, _)| n == "point")
        .map(|&(_, sub, _)| sub)
        .collect();
    assert_eq!(subs, vec![1, 2, 3, 4], "deterministic corr sub-indices");
    assert!(
        serial
            .iter()
            .filter(|(n, _, _)| n == "simulate")
            .all(|(_, _, p)| p == "point"),
        "{serial:?}"
    );
}
